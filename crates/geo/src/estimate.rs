//! Speed and direction estimation from the last *n* position sightings.
//!
//! The paper (Section 2, footnote 1, and Section 4) does not assume that the
//! positioning sensor reports speed and heading directly; instead they are
//! "interpolated from 2 consecutive positions ... in case of freeway traffic,
//! from 4 positions in case of city or inter-urban traffic and from 8
//! positions in case of a walking person". Larger windows smooth out GPS noise
//! at the cost of lag; the optimum depends on the object's speed relative to
//! the sensor uncertainty.
//!
//! [`MotionEstimator`] implements exactly that sliding-window least-effort
//! estimator: speed is total path length over elapsed time, direction is the
//! displacement from the oldest to the newest fix in the window.

use crate::point::Point;
use crate::vec2::Vec2;
use std::collections::VecDeque;

/// The estimated motion state derived from recent sightings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionEstimate {
    /// Estimated scalar speed in m/s (never negative).
    pub speed: f64,
    /// Estimated direction of travel as a unit vector. Defaults to north when
    /// the object has not moved.
    pub direction: Vec2,
    /// Estimated heading in radians clockwise from north.
    pub heading: f64,
    /// Number of sightings that contributed to the estimate.
    pub window: usize,
}

impl MotionEstimate {
    /// An estimate describing a stationary object.
    pub fn stationary() -> Self {
        MotionEstimate { speed: 0.0, direction: Vec2::NORTH, heading: 0.0, window: 1 }
    }

    /// The velocity vector (direction scaled by speed), m/s.
    #[inline]
    pub fn velocity(&self) -> Vec2 {
        self.direction * self.speed
    }
}

/// Sliding-window estimator of speed and direction from timestamped positions.
#[derive(Debug, Clone)]
pub struct MotionEstimator {
    window: usize,
    /// (timestamp seconds, position) pairs, oldest first.
    samples: VecDeque<(f64, Point)>,
}

impl MotionEstimator {
    /// Creates an estimator that uses the last `window` sightings (at least 2).
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "motion estimation needs at least two sightings");
        MotionEstimator { window, samples: VecDeque::with_capacity(window) }
    }

    /// The configured window size.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of sightings currently buffered.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no sightings have been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Removes all buffered sightings.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Pushes a sighting and returns the estimate over the current window.
    ///
    /// Sightings must be pushed in non-decreasing timestamp order; a sighting
    /// whose timestamp does not advance past the newest buffered one replaces
    /// it rather than corrupting the window.
    pub fn push(&mut self, timestamp: f64, position: Point) -> MotionEstimate {
        if let Some(&(last_t, _)) = self.samples.back() {
            if timestamp <= last_t {
                self.samples.pop_back();
            }
        }
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back((timestamp, position));
        self.estimate()
    }

    /// The estimate over the currently buffered sightings.
    ///
    /// With fewer than two sightings (or zero elapsed time) the object is
    /// reported as stationary.
    pub fn estimate(&self) -> MotionEstimate {
        if self.samples.len() < 2 {
            return MotionEstimate {
                window: self.samples.len().max(1),
                ..MotionEstimate::stationary()
            };
        }
        let (t0, p0) = *self.samples.front().expect("non-empty");
        let (t1, p1) = *self.samples.back().expect("non-empty");
        let dt = t1 - t0;
        if dt <= f64::EPSILON {
            return MotionEstimate { window: self.samples.len(), ..MotionEstimate::stationary() };
        }
        // Speed: distance actually covered along the sample chain (robust when
        // the object turns inside the window), divided by elapsed time.
        let mut path = 0.0;
        let mut prev = p0;
        for &(_, p) in self.samples.iter().skip(1) {
            path += prev.distance(&p);
            prev = p;
        }
        let speed = path / dt;
        // Direction: net displacement over the window (noise averages out).
        let displacement = p1 - p0;
        let direction = displacement.normalized_or_north();
        MotionEstimate {
            speed,
            direction,
            heading: direction.heading(),
            window: self.samples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_window_of_one() {
        let _ = MotionEstimator::new(1);
    }

    #[test]
    fn single_sample_is_stationary() {
        let mut est = MotionEstimator::new(4);
        let e = est.push(0.0, Point::new(5.0, 5.0));
        assert!(approx_eq(e.speed, 0.0));
        assert_eq!(e.direction, Vec2::NORTH);
    }

    #[test]
    fn straight_east_motion_at_constant_speed() {
        let mut est = MotionEstimator::new(2);
        est.push(0.0, Point::new(0.0, 0.0));
        let e = est.push(1.0, Point::new(10.0, 0.0));
        assert!(approx_eq(e.speed, 10.0));
        assert!(approx_eq(e.heading, std::f64::consts::FRAC_PI_2));
        assert_eq!(e.window, 2);
    }

    #[test]
    fn window_slides_and_forgets_old_samples() {
        let mut est = MotionEstimator::new(2);
        est.push(0.0, Point::new(0.0, 0.0));
        est.push(1.0, Point::new(10.0, 0.0));
        // Now the object stops; with window 2 the estimate must drop quickly.
        let e = est.push(2.0, Point::new(10.0, 0.0));
        assert!(approx_eq(e.speed, 0.0));
    }

    #[test]
    fn larger_window_smooths_noise() {
        // Zig-zag noise of ±1 m around a straight path: the 8-sample window's
        // direction estimate should still point east.
        let mut est = MotionEstimator::new(8);
        let mut last = MotionEstimate::stationary();
        for i in 0..8 {
            let noise = if i % 2 == 0 { 1.0 } else { -1.0 };
            last = est.push(i as f64, Point::new(5.0 * i as f64, noise));
        }
        assert!((last.heading - std::f64::consts::FRAC_PI_2).abs() < 0.1);
        assert_eq!(last.window, 8);
    }

    #[test]
    fn duplicate_timestamp_replaces_last_sample() {
        let mut est = MotionEstimator::new(4);
        est.push(0.0, Point::new(0.0, 0.0));
        est.push(1.0, Point::new(5.0, 0.0));
        // Same timestamp again with a corrected position: must not divide by 0.
        let e = est.push(1.0, Point::new(6.0, 0.0));
        assert!(e.speed.is_finite());
        assert!(approx_eq(e.speed, 6.0));
        assert_eq!(est.len(), 2);
    }

    #[test]
    fn speed_uses_path_length_not_net_displacement() {
        // A right-angle turn inside the window: path 20 m in 2 s = 10 m/s even
        // though the net displacement is only ~14.1 m.
        let mut est = MotionEstimator::new(3);
        est.push(0.0, Point::new(0.0, 0.0));
        est.push(1.0, Point::new(10.0, 0.0));
        let e = est.push(2.0, Point::new(10.0, 10.0));
        assert!(approx_eq(e.speed, 10.0));
    }

    #[test]
    fn clear_resets_the_estimator() {
        let mut est = MotionEstimator::new(2);
        est.push(0.0, Point::new(0.0, 0.0));
        est.push(1.0, Point::new(10.0, 0.0));
        est.clear();
        assert!(est.is_empty());
        assert!(approx_eq(est.estimate().speed, 0.0));
    }

    #[test]
    fn velocity_combines_speed_and_direction() {
        let e = MotionEstimate {
            speed: 5.0,
            direction: Vec2::EAST,
            heading: std::f64::consts::FRAC_PI_2,
            window: 2,
        };
        assert_eq!(e.velocity(), Vec2::new(5.0, 0.0));
    }
}
