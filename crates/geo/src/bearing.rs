//! Headings and angular arithmetic.
//!
//! The map-based predictor resolves intersections by choosing the outgoing
//! link "with the smallest angle to the previous link" (Section 3 of the
//! paper); that comparison is [`angle_between`] on two headings.

use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, TAU};

/// A compass heading in radians clockwise from north, normalised to `[0, 2π)`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bearing(f64);

impl Bearing {
    /// North (0 rad).
    pub const NORTH: Bearing = Bearing(0.0);

    /// Creates a bearing, normalising the angle into `[0, 2π)`.
    #[inline]
    pub fn new(radians: f64) -> Self {
        Bearing(normalize_angle(radians))
    }

    /// Creates a bearing from degrees clockwise from north.
    #[inline]
    pub fn from_degrees(degrees: f64) -> Self {
        Bearing::new(degrees.to_radians())
    }

    /// The bearing in radians, in `[0, 2π)`.
    #[inline]
    pub fn radians(&self) -> f64 {
        self.0
    }

    /// The bearing in degrees, in `[0, 360)`.
    #[inline]
    pub fn degrees(&self) -> f64 {
        self.0.to_degrees()
    }

    /// Absolute angular difference to `other`, in `[0, π]`.
    #[inline]
    pub fn difference(&self, other: &Bearing) -> f64 {
        angle_between(self.0, other.0)
    }

    /// The bearing rotated by `delta` radians (positive = clockwise).
    #[inline]
    pub fn rotated(&self, delta: f64) -> Bearing {
        Bearing::new(self.0 + delta)
    }

    /// The opposite direction.
    #[inline]
    pub fn reversed(&self) -> Bearing {
        self.rotated(PI)
    }
}

impl From<f64> for Bearing {
    fn from(radians: f64) -> Self {
        Bearing::new(radians)
    }
}

/// Normalises any angle in radians into `[0, 2π)`.
#[inline]
pub fn normalize_angle(radians: f64) -> f64 {
    let r = radians.rem_euclid(TAU);
    // `rem_euclid` can return TAU for inputs just below zero due to rounding.
    if r >= TAU {
        0.0
    } else {
        r
    }
}

/// Smallest absolute difference between two angles (radians), in `[0, π]`.
#[inline]
pub fn angle_between(a: f64, b: f64) -> f64 {
    let diff = (normalize_angle(a) - normalize_angle(b)).abs();
    if diff > PI {
        TAU - diff
    } else {
        diff
    }
}

/// Signed smallest rotation that takes heading `from` to heading `to`,
/// in `(-π, π]`; positive means clockwise.
#[inline]
pub fn signed_angle_between(from: f64, to: f64) -> f64 {
    let mut diff = normalize_angle(to) - normalize_angle(from);
    if diff > PI {
        diff -= TAU;
    } else if diff <= -PI {
        diff += TAU;
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn normalisation_wraps_into_range() {
        assert!(approx_eq(normalize_angle(TAU + 0.5), 0.5));
        assert!(approx_eq(normalize_angle(-FRAC_PI_2), 1.5 * PI));
        assert!(approx_eq(normalize_angle(0.0), 0.0));
        let r = normalize_angle(-1e-16);
        assert!((0.0..TAU).contains(&r));
    }

    #[test]
    fn angle_between_takes_the_short_way_round() {
        assert!(approx_eq(angle_between(0.1, TAU - 0.1), 0.2));
        assert!(approx_eq(angle_between(0.0, PI), PI));
        assert!(approx_eq(angle_between(FRAC_PI_2, FRAC_PI_2), 0.0));
    }

    #[test]
    fn signed_angle_has_correct_sign() {
        assert!(signed_angle_between(0.0, 0.3) > 0.0);
        assert!(signed_angle_between(0.3, 0.0) < 0.0);
        // Crossing the north wrap-around.
        assert!(approx_eq(signed_angle_between(TAU - 0.1, 0.1), 0.2));
        assert!(approx_eq(signed_angle_between(0.1, TAU - 0.1), -0.2));
    }

    #[test]
    fn bearing_conversions() {
        let b = Bearing::from_degrees(90.0);
        assert!(approx_eq(b.radians(), FRAC_PI_2));
        assert!(approx_eq(b.degrees(), 90.0));
        assert!(approx_eq(Bearing::from_degrees(450.0).degrees(), 90.0));
    }

    #[test]
    fn bearing_difference_and_rotation() {
        let east = Bearing::from_degrees(90.0);
        let north = Bearing::NORTH;
        assert!(approx_eq(east.difference(&north), FRAC_PI_2));
        assert!(approx_eq(north.rotated(FRAC_PI_2).degrees(), 90.0));
        assert!(approx_eq(east.reversed().degrees(), 270.0));
    }
}
