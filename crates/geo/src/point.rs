//! Positions in the local metric frame and in WGS-84 coordinates.

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A position in the local metric frame used by the protocols and the map.
///
/// `x` grows towards the east, `y` towards the north, both in metres relative
/// to the projection origin (see [`crate::projection::LocalProjection`]). All
/// deviation checks in the dead-reckoning protocols — "is the actual position
/// farther than `u_s` from the predicted position?" — are Euclidean distances
/// between `Point`s in this frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// The origin of the local frame.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from easting/northing metres.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in metres.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when only
    /// comparisons are needed, e.g. nearest-link selection).
    #[inline]
    pub fn distance_squared(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Displacement vector from `self` to `other`.
    #[inline]
    pub fn vector_to(&self, other: &Point) -> Vec2 {
        Vec2::new(other.x - self.x, other.y - self.y)
    }

    /// The point translated by `v`.
    #[inline]
    pub fn translate(&self, v: Vec2) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    ///
    /// `t` is not clamped; callers that need clamping (e.g. projecting onto a
    /// segment) do it explicitly.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Returns `true` if every coordinate is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2} m, {:.2} m)", self.x, self.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vec2) -> Point {
        self.translate(rhs)
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign<Vec2> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Sub<Point> for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

/// A geodetic position on the WGS-84 ellipsoid, in decimal degrees.
///
/// The paper's traces are DGPS output; [`crate::projection::LocalProjection`]
/// maps them into the local metric frame in which the protocols operate.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north. Valid range −90…90.
    pub lat: f64,
    /// Longitude in degrees, positive east. Valid range −180…180.
    pub lon: f64,
}

impl GeoPoint {
    /// Mean Earth radius used by the spherical distance formulas, in metres
    /// (IUGG mean radius).
    pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

    /// Creates a geodetic point, checking coordinate ranges in debug builds.
    #[inline]
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!((-90.0..=90.0).contains(&lat), "latitude out of range: {lat}");
        debug_assert!((-180.0..=180.0).contains(&lon), "longitude out of range: {lon}");
        GeoPoint { lat, lon }
    }

    /// Great-circle (haversine) distance to `other` in metres.
    pub fn haversine_distance(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().atan2((1.0 - a).sqrt());
        Self::EARTH_RADIUS_M * c
    }

    /// Initial bearing from `self` towards `other`, in radians clockwise from
    /// north, normalised to `[0, 2π)`.
    pub fn initial_bearing(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        let theta = y.atan2(x);
        theta.rem_euclid(std::f64::consts::TAU)
    }

    /// Returns `true` if the point lies inside the valid coordinate ranges.
    #[inline]
    pub fn is_valid(&self) -> bool {
        (-90.0..=90.0).contains(&self.lat)
            && (-180.0..=180.0).contains(&self.lon)
            && self.lat.is_finite()
            && self.lon.is_finite()
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}°, {:.6}°)", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(3.0, 4.0);
        let b = Point::new(0.0, 0.0);
        assert!(approx_eq(a.distance(&b), 5.0));
        assert!(approx_eq(b.distance(&a), 5.0));
        assert!(approx_eq(a.distance(&a), 0.0));
    }

    #[test]
    fn distance_squared_matches_distance() {
        let a = Point::new(-2.0, 7.5);
        let b = Point::new(10.0, -3.25);
        assert!(approx_eq(a.distance_squared(&b), a.distance(&b).powi(2)));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.midpoint(&b), Point::new(5.0, 10.0));
    }

    #[test]
    fn point_vector_arithmetic_roundtrip() {
        let p = Point::new(1.0, 2.0);
        let v = Vec2::new(3.0, -4.0);
        let q = p + v;
        assert_eq!(q, Point::new(4.0, -2.0));
        assert_eq!(q - v, p);
        assert_eq!(q - p, v);
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut p = Point::new(1.0, 1.0);
        p += Vec2::new(2.0, 3.0);
        assert_eq!(p, Point::new(3.0, 4.0));
        p -= Vec2::new(1.0, 1.0);
        assert_eq!(p, Point::new(2.0, 3.0));
    }

    #[test]
    fn haversine_distance_known_value() {
        // Stuttgart city centre to the IPVR campus in Vaihingen: roughly 8 km.
        let mitte = GeoPoint::new(48.7758, 9.1829);
        let vaihingen = GeoPoint::new(48.7266, 9.1077);
        let d = mitte.haversine_distance(&vaihingen);
        assert!((7_000.0..9_500.0).contains(&d), "got {d}");
        // Symmetry.
        assert!((d - vaihingen.haversine_distance(&mitte)).abs() < 1e-6);
    }

    #[test]
    fn haversine_zero_on_identical_points() {
        let p = GeoPoint::new(48.0, 9.0);
        assert!(p.haversine_distance(&p).abs() < 1e-9);
    }

    #[test]
    fn initial_bearing_cardinal_directions() {
        let origin = GeoPoint::new(0.0, 0.0);
        let north = GeoPoint::new(1.0, 0.0);
        let east = GeoPoint::new(0.0, 1.0);
        assert!(origin.initial_bearing(&north).abs() < 1e-9);
        assert!((origin.initial_bearing(&east) - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn geopoint_validity() {
        assert!(GeoPoint { lat: 48.0, lon: 9.0 }.is_valid());
        assert!(!GeoPoint { lat: 95.0, lon: 9.0 }.is_valid());
        assert!(!GeoPoint { lat: f64::NAN, lon: 9.0 }.is_valid());
    }

    #[test]
    fn point_display_formats_metres() {
        let s = format!("{}", Point::new(1.234, 5.678));
        assert!(s.contains("1.23") && s.contains("5.68"));
    }

    #[test]
    fn conversions_from_tuple() {
        let p: Point = (1.0, 2.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
    }
}
