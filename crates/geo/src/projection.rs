//! WGS-84 ↔ local metric frame projection.
//!
//! The paper's traces are DGPS latitude/longitude samples while all protocol
//! logic (deviation thresholds, map matching tolerances) is expressed in
//! metres. [`LocalProjection`] provides an equirectangular local tangent-plane
//! projection around a reference point: accurate to well under a metre for the
//! tens-of-kilometres extents the traces cover, which is far below the 20 m
//! minimum accuracy the paper evaluates.

use crate::point::{GeoPoint, Point};
use serde::{Deserialize, Serialize};

/// Equirectangular projection centred on a reference geodetic point.
///
/// East/north offsets are computed as arc lengths along the reference
/// latitude's parallel and the meridian respectively. The projection is exact
/// at the reference point and its error grows quadratically with distance;
/// over a 200 km × 200 km area the distortion stays below ~0.3 %, which is
/// negligible relative to GPS noise and the accuracy bounds studied here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalProjection {
    origin: GeoPoint,
    /// Metres per degree of latitude at the origin.
    m_per_deg_lat: f64,
    /// Metres per degree of longitude at the origin.
    m_per_deg_lon: f64,
}

impl LocalProjection {
    /// Creates a projection centred on `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        debug_assert!(origin.is_valid(), "projection origin must be a valid GeoPoint");
        let lat_rad = origin.lat.to_radians();
        // First-order WGS-84 series expansions for the length of one degree.
        let m_per_deg_lat = 111_132.92 - 559.82 * (2.0 * lat_rad).cos()
            + 1.175 * (4.0 * lat_rad).cos()
            - 0.0023 * (6.0 * lat_rad).cos();
        let m_per_deg_lon = 111_412.84 * lat_rad.cos() - 93.5 * (3.0 * lat_rad).cos()
            + 0.118 * (5.0 * lat_rad).cos();
        LocalProjection { origin, m_per_deg_lat, m_per_deg_lon }
    }

    /// A projection centred on the University of Stuttgart campus, the region
    /// where the paper's traces were recorded. Used as the default origin for
    /// synthetic maps and traces.
    pub fn stuttgart() -> Self {
        LocalProjection::new(GeoPoint::new(48.745, 9.105))
    }

    /// The reference point of the projection.
    #[inline]
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a geodetic point into the local metric frame.
    #[inline]
    pub fn to_local(&self, geo: &GeoPoint) -> Point {
        Point::new(
            (geo.lon - self.origin.lon) * self.m_per_deg_lon,
            (geo.lat - self.origin.lat) * self.m_per_deg_lat,
        )
    }

    /// Inverse projection from the local metric frame back to WGS-84.
    #[inline]
    pub fn to_geo(&self, p: &Point) -> GeoPoint {
        GeoPoint {
            lat: self.origin.lat + p.y / self.m_per_deg_lat,
            lon: self.origin.lon + p.x / self.m_per_deg_lon,
        }
    }

    /// Metres of northing per degree of latitude at the reference point.
    #[inline]
    pub fn metres_per_degree_lat(&self) -> f64 {
        self.m_per_deg_lat
    }

    /// Metres of easting per degree of longitude at the reference point.
    #[inline]
    pub fn metres_per_degree_lon(&self) -> f64 {
        self.m_per_deg_lon
    }
}

impl Default for LocalProjection {
    fn default() -> Self {
        LocalProjection::stuttgart()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_maps_to_zero() {
        let proj = LocalProjection::stuttgart();
        let p = proj.to_local(&proj.origin());
        assert!(p.distance(&Point::ORIGIN) < 1e-9);
    }

    #[test]
    fn roundtrip_is_exact_up_to_float_noise() {
        let proj = LocalProjection::stuttgart();
        let geo = GeoPoint::new(48.80, 9.20);
        let back = proj.to_geo(&proj.to_local(&geo));
        assert!((back.lat - geo.lat).abs() < 1e-10);
        assert!((back.lon - geo.lon).abs() < 1e-10);
    }

    #[test]
    fn local_distance_close_to_haversine() {
        let proj = LocalProjection::stuttgart();
        let a = GeoPoint::new(48.745, 9.105);
        let b = GeoPoint::new(48.80, 9.20); // ~9 km away
        let local = proj.to_local(&a).distance(&proj.to_local(&b));
        let hav = a.haversine_distance(&b);
        let rel_err = (local - hav).abs() / hav;
        assert!(rel_err < 0.005, "relative error {rel_err}");
    }

    #[test]
    fn one_degree_of_latitude_is_about_111_km() {
        let proj = LocalProjection::stuttgart();
        assert!((proj.metres_per_degree_lat() - 111_000.0).abs() < 1_000.0);
        // At ~48.7° N a degree of longitude is shorter than a degree of latitude.
        assert!(proj.metres_per_degree_lon() < proj.metres_per_degree_lat());
    }

    #[test]
    fn default_is_stuttgart() {
        assert_eq!(LocalProjection::default().origin(), LocalProjection::stuttgart().origin());
    }

    #[test]
    fn equator_projection_is_roughly_isotropic() {
        let proj = LocalProjection::new(GeoPoint::new(0.0, 0.0));
        let ratio = proj.metres_per_degree_lon() / proj.metres_per_degree_lat();
        assert!((ratio - 1.0).abs() < 0.01, "ratio {ratio}");
    }
}
