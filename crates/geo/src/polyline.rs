//! Polylines: the geometry of a road link with shape points.
//!
//! In the paper's map model (Fig. 4) a link connects two intersections and may
//! be subdivided by *shape points* into sub-links so that curved roads can be
//! represented. A [`Polyline`] stores that vertex chain together with
//! cumulative arc lengths, and supports the two operations the protocols need:
//! projecting a sensed position onto the link (map matching) and walking a
//! given distance along the link (map-based prediction).

use crate::bbox::Aabb;
use crate::point::Point;
use crate::segment::Segment;
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A chain of at least two vertices in the local metric frame, with
/// precomputed cumulative arc lengths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    vertices: Vec<Point>,
    /// `cumulative[i]` is the arc length from the first vertex to vertex `i`.
    cumulative: Vec<f64>,
}

/// Result of projecting a point onto a [`Polyline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolyProjection {
    /// Closest point on the polyline.
    pub point: Point,
    /// Distance from the query point to `point`, metres.
    pub distance: f64,
    /// Arc length from the start of the polyline to `point`, metres.
    pub arc_length: f64,
    /// Index of the segment (vertex `i` → vertex `i + 1`) containing `point`.
    pub segment_index: usize,
}

impl Polyline {
    /// Builds a polyline from a vertex chain.
    ///
    /// # Panics
    /// Panics if fewer than two vertices are supplied; a road link always has
    /// two endpoints.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 2, "a polyline needs at least two vertices");
        let mut cumulative = Vec::with_capacity(vertices.len());
        let mut acc = 0.0;
        cumulative.push(0.0);
        for w in vertices.windows(2) {
            acc += w[0].distance(&w[1]);
            cumulative.push(acc);
        }
        Polyline { vertices, cumulative }
    }

    /// A straight two-vertex polyline.
    pub fn straight(a: Point, b: Point) -> Self {
        Polyline::new(vec![a, b])
    }

    /// The vertex chain.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of line segments (vertices − 1).
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.vertices.len() - 1
    }

    /// The `i`-th segment.
    #[inline]
    pub fn segment(&self, i: usize) -> Segment {
        Segment::new(self.vertices[i], self.vertices[i + 1])
    }

    /// Iterator over all segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.vertices.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// Total arc length in metres.
    #[inline]
    pub fn length(&self) -> f64 {
        *self.cumulative.last().expect("polyline has at least two vertices")
    }

    /// First vertex.
    #[inline]
    pub fn first(&self) -> Point {
        self.vertices[0]
    }

    /// Last vertex.
    #[inline]
    pub fn last(&self) -> Point {
        *self.vertices.last().expect("polyline has at least two vertices")
    }

    /// Cumulative arc length from the start to vertex `i`.
    #[inline]
    pub fn cumulative_length(&self, i: usize) -> f64 {
        self.cumulative[i]
    }

    /// Axis-aligned bounding box of the polyline.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::from_points(self.vertices.iter().copied())
            .expect("polyline has at least two vertices")
    }

    /// The point at arc length `s` from the start, clamped to `[0, length]`.
    ///
    /// One `O(log n)` binary search over the precomputed cumulative table —
    /// no per-call allocation and no linear walk over the segments, however
    /// long the link. This (together with [`Polyline::sample_at_arc_length`])
    /// is the inner loop of map-based prediction: every client deviation
    /// check and every server query-time prediction lands here.
    pub fn point_at_arc_length(&self, s: f64) -> Point {
        if s <= 0.0 {
            return self.first();
        }
        if s >= self.length() {
            return self.last();
        }
        let idx = self.segment_index_at(s);
        self.segment(idx).point_at_distance(s - self.cumulative[idx])
    }

    /// Heading (radians clockwise from north) of the segment containing arc
    /// length `s` (binary search, like [`Polyline::point_at_arc_length`]).
    pub fn heading_at_arc_length(&self, s: f64) -> f64 {
        let idx = self.segment_index_at(s);
        self.segment(idx).heading()
    }

    /// Direction (unit vector) of the segment containing arc length `s`
    /// (binary search, like [`Polyline::point_at_arc_length`]).
    pub fn direction_at_arc_length(&self, s: f64) -> Vec2 {
        let idx = self.segment_index_at(s);
        self.segment(idx).unit_direction()
    }

    /// The point *and* travel direction at arc length `s`, resolved with a
    /// single binary search — for callers (the map predictor's
    /// heading-disambiguation step) that would otherwise pay two lookups on
    /// the same arc length.
    pub fn sample_at_arc_length(&self, s: f64) -> (Point, Vec2) {
        let idx = self.segment_index_at(s);
        let seg = self.segment(idx);
        let along = (s - self.cumulative[idx]).clamp(0.0, seg.length());
        (seg.point_at_distance(along), seg.unit_direction())
    }

    /// Index of the segment containing arc length `s` (clamped to the valid
    /// range): an `O(log n)` binary search over the cumulative arc-length
    /// table built once at construction.
    fn segment_index_at(&self, s: f64) -> usize {
        if s <= 0.0 {
            return 0;
        }
        if s >= self.length() {
            return self.segment_count() - 1;
        }
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&s).unwrap()) {
            Ok(i) => i.min(self.segment_count() - 1),
            Err(i) => i - 1,
        }
    }

    /// Projects `p` onto the polyline, returning the globally closest point
    /// over all segments.
    pub fn project(&self, p: &Point) -> PolyProjection {
        let mut best = PolyProjection {
            point: self.first(),
            distance: f64::INFINITY,
            arc_length: 0.0,
            segment_index: 0,
        };
        for (i, seg) in self.segments().enumerate() {
            let proj = seg.project(p);
            if proj.distance < best.distance {
                best = PolyProjection {
                    point: proj.point,
                    distance: proj.distance,
                    arc_length: self.cumulative[i] + proj.t * seg.length(),
                    segment_index: i,
                };
            }
        }
        best
    }

    /// Shortest distance from `p` to the polyline, metres.
    #[inline]
    pub fn distance_to(&self, p: &Point) -> f64 {
        self.project(p).distance
    }

    /// The polyline traversed in the opposite direction.
    pub fn reversed(&self) -> Polyline {
        let mut v = self.vertices.clone();
        v.reverse();
        Polyline::new(v)
    }

    /// Resamples the polyline at (roughly) every `step` metres of arc length,
    /// always including both endpoints. Useful for rendering and for building
    /// synthetic traces that follow a link.
    pub fn resample(&self, step: f64) -> Vec<Point> {
        assert!(step > 0.0, "resample step must be positive");
        let total = self.length();
        let n = (total / step).ceil().max(1.0) as usize;
        let mut out = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let s = (i as f64 / n as f64) * total;
            out.push(self.point_at_arc_length(s));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    /// An L-shaped polyline: 10 m east, then 10 m north.
    fn ell() -> Polyline {
        Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(10.0, 10.0)])
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn rejects_single_vertex() {
        let _ = Polyline::new(vec![Point::ORIGIN]);
    }

    #[test]
    fn length_is_sum_of_segment_lengths() {
        assert!(approx_eq(ell().length(), 20.0));
        assert!(approx_eq(Polyline::straight(Point::ORIGIN, Point::new(3.0, 4.0)).length(), 5.0));
    }

    #[test]
    fn cumulative_lengths_are_monotone() {
        let p = ell();
        assert!(approx_eq(p.cumulative_length(0), 0.0));
        assert!(approx_eq(p.cumulative_length(1), 10.0));
        assert!(approx_eq(p.cumulative_length(2), 20.0));
    }

    #[test]
    fn point_at_arc_length_walks_both_segments() {
        let p = ell();
        assert_eq!(p.point_at_arc_length(0.0), Point::new(0.0, 0.0));
        assert_eq!(p.point_at_arc_length(5.0), Point::new(5.0, 0.0));
        assert_eq!(p.point_at_arc_length(10.0), Point::new(10.0, 0.0));
        assert_eq!(p.point_at_arc_length(15.0), Point::new(10.0, 5.0));
        assert_eq!(p.point_at_arc_length(20.0), Point::new(10.0, 10.0));
        // Clamping.
        assert_eq!(p.point_at_arc_length(-3.0), p.first());
        assert_eq!(p.point_at_arc_length(99.0), p.last());
    }

    #[test]
    fn heading_changes_at_the_corner() {
        let p = ell();
        assert!(approx_eq(p.heading_at_arc_length(5.0), std::f64::consts::FRAC_PI_2));
        assert!(approx_eq(p.heading_at_arc_length(15.0), 0.0));
    }

    #[test]
    fn sample_agrees_with_the_separate_lookups() {
        let p = ell();
        for s in [-3.0, 0.0, 4.5, 10.0, 13.0, 20.0, 50.0] {
            let (point, direction) = p.sample_at_arc_length(s);
            assert_eq!(point, p.point_at_arc_length(s), "s={s}");
            assert_eq!(direction, p.direction_at_arc_length(s), "s={s}");
        }
    }

    #[test]
    fn projection_picks_the_nearest_segment() {
        let p = ell();
        // Point nearer the second (northbound) segment.
        let proj = p.project(&Point::new(12.0, 6.0));
        assert_eq!(proj.segment_index, 1);
        assert!(approx_eq(proj.point.x, 10.0));
        assert!(approx_eq(proj.point.y, 6.0));
        assert!(approx_eq(proj.distance, 2.0));
        assert!(approx_eq(proj.arc_length, 16.0));
    }

    #[test]
    fn projection_at_the_corner_is_consistent() {
        let p = ell();
        let proj = p.project(&Point::new(12.0, -2.0));
        // Closest point is the corner vertex at (10, 0), arc length 10.
        assert!(approx_eq(proj.point.x, 10.0));
        assert!(approx_eq(proj.point.y, 0.0));
        assert!(approx_eq(proj.arc_length, 10.0));
    }

    #[test]
    fn reversed_has_same_length_and_swapped_ends() {
        let p = ell();
        let r = p.reversed();
        assert!(approx_eq(p.length(), r.length()));
        assert_eq!(r.first(), p.last());
        assert_eq!(r.last(), p.first());
    }

    #[test]
    fn resample_includes_endpoints_and_is_dense_enough() {
        let p = ell();
        let pts = p.resample(3.0);
        assert_eq!(*pts.first().unwrap(), p.first());
        assert_eq!(*pts.last().unwrap(), p.last());
        for w in pts.windows(2) {
            assert!(w[0].distance(&w[1]) <= 3.0 + 1e-9);
        }
    }

    #[test]
    fn bounding_box_covers_all_vertices() {
        let bb = ell().bounding_box();
        assert!(bb.contains(&Point::new(0.0, 0.0)));
        assert!(bb.contains(&Point::new(10.0, 10.0)));
        assert!(!bb.contains(&Point::new(-1.0, 0.0)));
    }

    #[test]
    fn distance_to_far_point() {
        let p = Polyline::straight(Point::ORIGIN, Point::new(10.0, 0.0));
        assert!(approx_eq(p.distance_to(&Point::new(5.0, 7.0)), 7.0));
    }
}
