//! Small typed unit helpers.
//!
//! The paper quotes speeds in km/h (Table 1) and accuracies in metres; the
//! protocol maths runs in SI units (m, m/s, s). These aliases and conversion
//! helpers keep the call sites readable without a heavyweight units library.

/// Metres. Plain alias used in public APIs for documentation value.
pub type Meters = f64;
/// Metres per second.
pub type MetersPerSecond = f64;
/// Seconds.
pub type Seconds = f64;

/// Converts kilometres per hour to metres per second.
#[inline]
pub fn kmh_to_ms(kmh: f64) -> MetersPerSecond {
    kmh / 3.6
}

/// Converts metres per second to kilometres per hour.
#[inline]
pub fn ms_to_kmh(ms: MetersPerSecond) -> f64 {
    ms * 3.6
}

/// Converts kilometres to metres.
#[inline]
pub fn km_to_m(km: f64) -> Meters {
    km * 1000.0
}

/// Converts metres to kilometres.
#[inline]
pub fn m_to_km(m: Meters) -> f64 {
    m / 1000.0
}

/// Converts hours to seconds.
#[inline]
pub fn hours_to_seconds(h: f64) -> Seconds {
    h * 3600.0
}

/// Converts seconds to hours.
#[inline]
pub fn seconds_to_hours(s: Seconds) -> f64 {
    s / 3600.0
}

/// Formats a duration in seconds as `h:mm` (the format used in Table 1,
/// e.g. `1:35 h`).
pub fn format_duration_hm(seconds: Seconds) -> String {
    let total_minutes = (seconds / 60.0).round() as i64;
    let hours = total_minutes / 60;
    let minutes = total_minutes % 60;
    format!("{hours}:{minutes:02} h")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn speed_conversions_roundtrip() {
        assert!(approx_eq(kmh_to_ms(36.0), 10.0));
        assert!(approx_eq(ms_to_kmh(10.0), 36.0));
        assert!(approx_eq(ms_to_kmh(kmh_to_ms(103.0)), 103.0));
    }

    #[test]
    fn distance_conversions() {
        assert!(approx_eq(km_to_m(1.5), 1500.0));
        assert!(approx_eq(m_to_km(250.0), 0.25));
    }

    #[test]
    fn time_conversions() {
        assert!(approx_eq(hours_to_seconds(1.5), 5400.0));
        assert!(approx_eq(seconds_to_hours(5400.0), 1.5));
    }

    #[test]
    fn duration_formatting_matches_table1_style() {
        assert_eq!(format_duration_hm(hours_to_seconds(1.0) + 35.0 * 60.0), "1:35 h");
        assert_eq!(format_duration_hm(hours_to_seconds(2.0) + 8.0 * 60.0), "2:08 h");
        assert_eq!(format_duration_hm(30.0), "0:01 h");
    }
}
