//! # mbdr-geo — geometry substrate
//!
//! Planar and geodetic geometry primitives used throughout the map-based
//! dead-reckoning (MBDR) reproduction:
//!
//! * [`Point`] / [`Vec2`] — positions and displacements in a local metric
//!   (east/north) frame, the frame in which all protocol distance checks run.
//! * [`GeoPoint`] and [`projection::LocalProjection`] — WGS-84 coordinates and
//!   an equirectangular local tangent-plane projection, so synthetic maps and
//!   traces can round-trip through latitude/longitude like the paper's DGPS
//!   traces did.
//! * [`Segment`] / [`Polyline`] — road-link geometry (links with shape points
//!   are polylines); perpendicular projection of a sensed position onto a link
//!   is the core primitive of the paper's map matching (Fig. 5).
//! * [`Aabb`] — axis-aligned bounding boxes for the spatial index.
//! * [`bearing`] — headings and angular differences (the map-based predictor
//!   chooses the outgoing link "with the smallest angle to the previous link").
//! * [`estimate`] — speed and direction estimation from the last *n* position
//!   sightings (the paper interpolates over 2, 4 or 8 fixes depending on the
//!   movement pattern).
//! * [`units`] — small typed helpers for km/h ↔ m/s and friends.
//!
//! Everything is `f64`, allocation-free on the hot paths, and independent of
//! the rest of the workspace so the substrate can be reused on its own.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bbox;
pub mod bearing;
pub mod estimate;
pub mod point;
pub mod polyline;
pub mod projection;
pub mod segment;
pub mod units;
pub mod vec2;

pub use bbox::Aabb;
pub use bearing::{angle_between, normalize_angle, signed_angle_between, Bearing};
pub use estimate::{MotionEstimate, MotionEstimator};
pub use point::{GeoPoint, Point};
pub use polyline::{PolyProjection, Polyline};
pub use projection::LocalProjection;
pub use segment::{Segment, SegmentProjection};
pub use units::{
    format_duration_hm, hours_to_seconds, km_to_m, kmh_to_ms, m_to_km, ms_to_kmh, seconds_to_hours,
    Meters, MetersPerSecond, Seconds,
};
pub use vec2::Vec2;

/// Numerical tolerance used by geometric comparisons in this crate (metres).
///
/// One tenth of a millimetre: far below both the DGPS accuracy (2–5 m) and the
/// smallest requested accuracy the paper evaluates (20 m), but large enough to
/// absorb floating-point noise in projections and arc-length computations.
pub const EPSILON: f64 = 1e-4;

/// Returns `true` if two scalar values are equal within [`EPSILON`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(approx_eq(1.0, 1.0 + EPSILON / 2.0));
        assert!(!approx_eq(1.0, 1.0 + EPSILON * 10.0));
    }
}
