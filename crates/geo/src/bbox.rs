//! Axis-aligned bounding boxes for the spatial index and range queries.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in the local metric frame.
///
/// Used as the key geometry of the spatial indexes in `mbdr-spatial` and for
/// the location-service range queries ("all users currently inside a
/// department of a store").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum (south-west) corner.
    pub min: Point,
    /// Maximum (north-east) corner.
    pub max: Point,
}

impl Aabb {
    /// Creates a bounding box from two corner points, normalising the corner
    /// order so that `min <= max` component-wise.
    pub fn new(a: Point, b: Point) -> Self {
        Aabb {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A degenerate box containing exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Aabb { min: p, max: p }
    }

    /// The smallest box containing all points of the iterator, or `None` if
    /// the iterator is empty.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = Aabb::from_point(first);
        for p in it {
            bb.expand_to_include(&p);
        }
        Some(bb)
    }

    /// Width (east–west extent) in metres.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (north–south extent) in metres.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square metres.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half of the perimeter; the standard R-tree "margin" measure.
    #[inline]
    pub fn half_perimeter(&self) -> f64 {
        self.width() + self.height()
    }

    /// Centre point of the box.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Returns `true` if `p` lies inside or on the boundary of the box.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` if `other` is entirely inside (or equal to) `self`.
    #[inline]
    pub fn contains_box(&self, other: &Aabb) -> bool {
        self.contains(&other.min) && self.contains(&other.max)
    }

    /// Returns `true` if the two boxes overlap (boundary contact counts).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Grows the box in place so that it contains `p`.
    pub fn expand_to_include(&mut self, p: &Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// The union of two boxes (smallest box containing both).
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The box grown by `margin` metres on every side.
    pub fn inflated(&self, margin: f64) -> Aabb {
        Aabb {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Shortest distance from `p` to the box (zero if the point is inside).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// A square box of side `2 * radius` centred on `p`; the query shape used
    /// by the map matcher when looking for candidate links within `u_m`.
    pub fn around(p: Point, radius: f64) -> Aabb {
        debug_assert!(radius >= 0.0);
        Aabb {
            min: Point::new(p.x - radius, p.y - radius),
            max: Point::new(p.x + radius, p.y + radius),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn corners_are_normalised() {
        let bb = Aabb::new(Point::new(5.0, -1.0), Point::new(-2.0, 3.0));
        assert_eq!(bb.min, Point::new(-2.0, -1.0));
        assert_eq!(bb.max, Point::new(5.0, 3.0));
        assert!(approx_eq(bb.width(), 7.0));
        assert!(approx_eq(bb.height(), 4.0));
        assert!(approx_eq(bb.area(), 28.0));
        assert!(approx_eq(bb.half_perimeter(), 11.0));
    }

    #[test]
    fn containment_and_intersection() {
        let a = Aabb::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let b = Aabb::new(Point::new(5.0, 5.0), Point::new(15.0, 15.0));
        let c = Aabb::new(Point::new(20.0, 20.0), Point::new(30.0, 30.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.contains(&Point::new(10.0, 10.0)));
        assert!(!a.contains(&Point::new(10.1, 10.0)));
        assert!(a.contains_box(&Aabb::new(Point::new(1.0, 1.0), Point::new(9.0, 9.0))));
        assert!(!a.contains_box(&b));
    }

    #[test]
    fn union_and_expand() {
        let mut a = Aabb::from_point(Point::new(1.0, 1.0));
        a.expand_to_include(&Point::new(-1.0, 4.0));
        assert_eq!(a.min, Point::new(-1.0, 1.0));
        assert_eq!(a.max, Point::new(1.0, 4.0));
        let b = Aabb::new(Point::new(10.0, 10.0), Point::new(12.0, 12.0));
        let u = a.union(&b);
        assert_eq!(u.min, Point::new(-1.0, 1.0));
        assert_eq!(u.max, Point::new(12.0, 12.0));
    }

    #[test]
    fn from_points_handles_empty_and_many() {
        assert!(Aabb::from_points(std::iter::empty()).is_none());
        let bb = Aabb::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, -2.0),
            Point::new(1.0, 5.0),
        ])
        .unwrap();
        assert_eq!(bb.min, Point::new(0.0, -2.0));
        assert_eq!(bb.max, Point::new(3.0, 5.0));
    }

    #[test]
    fn distance_to_point_is_zero_inside() {
        let bb = Aabb::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        assert!(approx_eq(bb.distance_to_point(&Point::new(5.0, 5.0)), 0.0));
        assert!(approx_eq(bb.distance_to_point(&Point::new(13.0, 14.0)), 5.0));
        assert!(approx_eq(bb.distance_to_point(&Point::new(-3.0, 5.0)), 3.0));
    }

    #[test]
    fn around_builds_centred_square() {
        let bb = Aabb::around(Point::new(2.0, 3.0), 50.0);
        assert_eq!(bb.center(), Point::new(2.0, 3.0));
        assert!(approx_eq(bb.width(), 100.0));
        assert!(approx_eq(bb.height(), 100.0));
    }

    #[test]
    fn inflated_grows_every_side() {
        let bb = Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)).inflated(1.0);
        assert_eq!(bb.min, Point::new(-1.0, -1.0));
        assert_eq!(bb.max, Point::new(3.0, 3.0));
    }
}
