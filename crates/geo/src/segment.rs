//! Line segments and perpendicular projection onto them.
//!
//! Projecting a sensed position perpendicularly onto a road link (Fig. 5 of
//! the paper) is the central geometric operation of map matching; a link with
//! shape points is a chain of [`Segment`]s (see [`crate::polyline::Polyline`]).

use crate::point::Point;
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A directed straight-line segment from `a` to `b` in the local metric frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

/// Result of projecting a point onto a [`Segment`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentProjection {
    /// The closest point on the segment (clamped to the segment's extent).
    pub point: Point,
    /// Normalised parameter along the segment in `[0, 1]` (0 = `a`, 1 = `b`).
    pub t: f64,
    /// Distance from the query point to [`SegmentProjection::point`], metres.
    pub distance: f64,
}

impl Segment {
    /// Creates a segment from `a` to `b`.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment in metres.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Direction from `a` to `b` as a (possibly zero) vector.
    #[inline]
    pub fn direction(&self) -> Vec2 {
        self.b - self.a
    }

    /// Unit direction from `a` to `b`; north for degenerate (zero-length)
    /// segments so that headings stay well defined.
    #[inline]
    pub fn unit_direction(&self) -> Vec2 {
        self.direction().normalized_or_north()
    }

    /// Heading of the segment in radians clockwise from north.
    #[inline]
    pub fn heading(&self) -> f64 {
        self.direction().heading()
    }

    /// The point at normalised parameter `t` (clamped to `[0, 1]`).
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(&self.b, t.clamp(0.0, 1.0))
    }

    /// The point at arc-length `s` metres from `a` (clamped to the segment).
    #[inline]
    pub fn point_at_distance(&self, s: f64) -> Point {
        let len = self.length();
        if len <= f64::EPSILON {
            return self.a;
        }
        self.point_at(s / len)
    }

    /// Projects `p` perpendicularly onto the segment, clamping to the
    /// endpoints when the foot of the perpendicular falls outside it.
    pub fn project(&self, p: &Point) -> SegmentProjection {
        let d = self.direction();
        let len2 = d.norm_squared();
        let t =
            if len2 <= f64::EPSILON { 0.0 } else { ((*p - self.a).dot(&d) / len2).clamp(0.0, 1.0) };
        let point = self.a.lerp(&self.b, t);
        SegmentProjection { point, t, distance: p.distance(&point) }
    }

    /// Shortest distance from `p` to the segment in metres.
    #[inline]
    pub fn distance_to(&self, p: &Point) -> f64 {
        self.project(p).distance
    }

    /// The segment with its direction reversed.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(&self.b)
    }

    /// Returns `true` if the segment is (numerically) a single point.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.length() <= f64::EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn seg() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0))
    }

    #[test]
    fn length_and_direction() {
        let s = seg();
        assert!(approx_eq(s.length(), 10.0));
        assert_eq!(s.unit_direction(), Vec2::EAST);
        assert!(approx_eq(s.heading(), std::f64::consts::FRAC_PI_2));
    }

    #[test]
    fn projection_inside_segment_is_perpendicular() {
        let s = seg();
        let proj = s.project(&Point::new(4.0, 3.0));
        assert!(approx_eq(proj.point.x, 4.0));
        assert!(approx_eq(proj.point.y, 0.0));
        assert!(approx_eq(proj.t, 0.4));
        assert!(approx_eq(proj.distance, 3.0));
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let s = seg();
        let before = s.project(&Point::new(-5.0, 2.0));
        assert_eq!(before.point, s.a);
        assert!(approx_eq(before.t, 0.0));
        let after = s.project(&Point::new(20.0, -2.0));
        assert_eq!(after.point, s.b);
        assert!(approx_eq(after.t, 1.0));
    }

    #[test]
    fn degenerate_segment_projects_to_its_point() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert!(s.is_degenerate());
        let proj = s.project(&Point::new(4.0, 5.0));
        assert_eq!(proj.point, s.a);
        assert!(approx_eq(proj.distance, 5.0));
        assert_eq!(s.point_at_distance(3.0), s.a);
    }

    #[test]
    fn point_at_distance_walks_along_segment() {
        let s = seg();
        assert_eq!(s.point_at_distance(0.0), s.a);
        assert_eq!(s.point_at_distance(10.0), s.b);
        assert_eq!(s.point_at_distance(2.5), Point::new(2.5, 0.0));
        // Clamped beyond the end.
        assert_eq!(s.point_at_distance(50.0), s.b);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let s = seg().reversed();
        assert_eq!(s.a, Point::new(10.0, 0.0));
        assert_eq!(s.b, Point::new(0.0, 0.0));
        assert_eq!(seg().midpoint(), Point::new(5.0, 0.0));
    }

    #[test]
    fn distance_to_matches_projection_distance() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(0.0, 8.0));
        assert!(approx_eq(s.distance_to(&Point::new(3.0, 4.0)), 3.0));
        assert!(approx_eq(s.distance_to(&Point::new(0.0, 12.0)), 4.0));
    }
}
