//! Planar displacement vectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A displacement (or velocity, when interpreted per second) in the local
/// east/north metric frame.
///
/// The linear-prediction dead-reckoning protocol predicts
/// `pos + dir * v * (t - t0)` — `dir` is a unit `Vec2`, `v` a scalar speed.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// East component (metres, or m/s for velocities).
    pub x: f64,
    /// North component (metres, or m/s for velocities).
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };
    /// Unit vector pointing east.
    pub const EAST: Vec2 = Vec2 { x: 1.0, y: 0.0 };
    /// Unit vector pointing north.
    pub const NORTH: Vec2 = Vec2 { x: 0.0, y: 1.0 };

    /// Creates a vector from east/north components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector for a heading given in radians clockwise from north
    /// (compass convention, the convention used for object headings
    /// throughout this workspace).
    #[inline]
    pub fn from_heading(heading_rad: f64) -> Self {
        Vec2::new(heading_rad.sin(), heading_rad.cos())
    }

    /// Heading of this vector in radians clockwise from north, in `[0, 2π)`.
    /// Returns `0.0` for the zero vector.
    #[inline]
    pub fn heading(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        self.x.atan2(self.y).rem_euclid(std::f64::consts::TAU)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_squared(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component of the 3-D cross product). Positive when
    /// `other` lies counter-clockwise from `self`.
    #[inline]
    pub fn cross(&self, other: &Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Returns a unit-length copy, or `None` if the vector is (numerically)
    /// zero.
    #[inline]
    pub fn normalized(&self) -> Option<Vec2> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(Vec2::new(self.x / n, self.y / n))
        }
    }

    /// Like [`Vec2::normalized`] but falls back to `Vec2::NORTH` for the zero
    /// vector. Convenient when a heading is required and "standing still"
    /// should behave deterministically.
    #[inline]
    pub fn normalized_or_north(&self) -> Vec2 {
        self.normalized().unwrap_or(Vec2::NORTH)
    }

    /// Scales the vector by `s`.
    #[inline]
    pub fn scale(&self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }

    /// The vector rotated by `angle` radians counter-clockwise.
    #[inline]
    pub fn rotated(&self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Perpendicular vector (rotated 90° counter-clockwise).
    #[inline]
    pub fn perp(&self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Angle between `self` and `other` in radians, in `[0, π]`.
    /// Returns `0.0` if either vector is zero.
    pub fn angle_to(&self, other: &Vec2) -> f64 {
        let denom = self.norm() * other.norm();
        if denom <= f64::EPSILON {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }

    /// Returns `true` if the vector is exactly zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.x == 0.0 && self.y == 0.0
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.2}, {:.2}>", self.x, self.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        self.scale(rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs.scale(self)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn heading_of_cardinal_directions() {
        assert!(approx_eq(Vec2::NORTH.heading(), 0.0));
        assert!(approx_eq(Vec2::EAST.heading(), FRAC_PI_2));
        assert!(approx_eq(Vec2::new(0.0, -1.0).heading(), PI));
        assert!(approx_eq(Vec2::new(-1.0, 0.0).heading(), 1.5 * PI));
    }

    #[test]
    fn from_heading_roundtrip() {
        for deg in [0.0f64, 30.0, 90.0, 123.0, 250.0, 359.0] {
            let h = deg.to_radians();
            let v = Vec2::from_heading(h);
            assert!(approx_eq(v.norm(), 1.0));
            assert!((v.heading() - h).abs() < 1e-9, "deg {deg}");
        }
    }

    #[test]
    fn norm_and_dot() {
        let v = Vec2::new(3.0, 4.0);
        assert!(approx_eq(v.norm(), 5.0));
        assert!(approx_eq(v.dot(&v), 25.0));
        assert!(approx_eq(Vec2::EAST.dot(&Vec2::NORTH), 0.0));
    }

    #[test]
    fn cross_sign_indicates_turn_direction() {
        // North is counter-clockwise from east.
        assert!(Vec2::EAST.cross(&Vec2::NORTH) > 0.0);
        assert!(Vec2::NORTH.cross(&Vec2::EAST) < 0.0);
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Vec2::ZERO.normalized().is_none());
        assert_eq!(Vec2::ZERO.normalized_or_north(), Vec2::NORTH);
        let v = Vec2::new(0.0, 10.0).normalized().unwrap();
        assert!(approx_eq(v.norm(), 1.0));
    }

    #[test]
    fn rotation_by_quarter_turn() {
        let v = Vec2::EAST.rotated(FRAC_PI_2);
        assert!(approx_eq(v.x, 0.0));
        assert!(approx_eq(v.y, 1.0));
        assert_eq!(Vec2::EAST.perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn angle_between_vectors() {
        assert!(approx_eq(Vec2::EAST.angle_to(&Vec2::NORTH), FRAC_PI_2));
        assert!(approx_eq(Vec2::EAST.angle_to(&Vec2::EAST), 0.0));
        assert!(approx_eq(Vec2::EAST.angle_to(&(-Vec2::EAST)), PI));
        assert!(approx_eq(Vec2::ZERO.angle_to(&Vec2::EAST), 0.0));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Vec2::new(4.0, 1.0));
        c -= b;
        assert_eq!(c, a);
    }
}
