//! `mbdr-analyze` — CLI driver for the workspace lints.
//!
//! ```text
//! mbdr-analyze [--root DIR] [--check] [--list]
//! ```
//!
//! Walks the workspace sources, runs every lint, prints one
//! `file:line: [lint-id] message` per finding and exits with
//! `reproduce --check`-style semantics: 0 clean, 1 findings, 2 usage or
//! I/O error. `--check` is accepted for symmetry with the other gates
//! (analysis always checks); `--list` prints the lint catalog instead.

use mbdr_analyze::{analyze_workspace, find_workspace_root, AnalyzeConfig};
use mbdr_analyze::{LINT_DESCRIPTIONS, LINT_IDS};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return die("--root needs a directory"),
            },
            "--check" => {}
            "--list" => list = true,
            "--help" | "-h" => {
                println!("usage: mbdr-analyze [--root DIR] [--check] [--list]");
                return ExitCode::SUCCESS;
            }
            other => return die(&format!("unknown argument `{other}`")),
        }
    }

    if list {
        for (id, description) in LINT_IDS.iter().zip(LINT_DESCRIPTIONS) {
            println!("{id}: {description}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => return die(&format!("cannot read the working directory: {e}")),
            };
            match find_workspace_root(&cwd) {
                Some(dir) => dir,
                None => return die("no workspace root above the working directory; use --root"),
            }
        }
    };

    let config = match AnalyzeConfig::mbdr(&root) {
        Ok(config) => config,
        Err(e) => return die(&format!("cannot load the analysis config: {e}")),
    };
    let diagnostics = match analyze_workspace(&root, &config) {
        Ok(diagnostics) => diagnostics,
        Err(e) => return die(&format!("analysis failed: {e}")),
    };
    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        eprintln!("mbdr-analyze: clean ({} lints)", LINT_IDS.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("mbdr-analyze: {} finding(s)", diagnostics.len());
        ExitCode::from(1)
    }
}

fn die(message: &str) -> ExitCode {
    eprintln!("mbdr-analyze: {message}");
    ExitCode::from(2)
}
