//! `mbdr-analyze` — the workspace's dependency-free static-analysis engine.
//!
//! The stack's correctness story is largely *by convention*: `unsafe` lives
//! only in `crates/net/src/sys`, decode paths never panic on hostile bytes,
//! the hot-path functions pinned at zero allocations by `BENCH_hotpath.json`
//! stay allocation-free, every stats counter is both bumped and surfaced,
//! and every wire-kind byte has an encode and a decode arm. This crate turns
//! those conventions into lints: a hand-rolled lexer ([`lexer`]), structural
//! passes ([`model`]) and five project-specific checks ([`lints`]) that emit
//! `file:line: [lint-id] message` diagnostics with `reproduce --check`-style
//! exit semantics. The engine is std-only (no `syn`, consistent with the
//! workspace's offline-shim policy) and self-tests against a fixture corpus.
//!
//! Escape hatch: a `// lint: allow(<lint-id>) reason=<why>` comment on the
//! offending line or the line above suppresses that lint there; a hatch
//! without a reason is itself a diagnostic (`escape-hatch`).

pub mod lexer;
pub mod lints;
pub mod model;

use lexer::LexedFile;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Identifiers of every lint the engine ships, in catalog order.
pub const LINT_IDS: [&str; 5] = [
    lints::unsafe_confinement::ID,
    lints::panic_freedom::ID,
    lints::hotpath_alloc::ID,
    lints::counter_discipline::ID,
    lints::wire_kinds::ID,
];

/// One-line description per lint, aligned with [`LINT_IDS`].
pub const LINT_DESCRIPTIONS: [&str; 5] = [
    "`unsafe` only inside the confinement boundary, every block with a // SAFETY: comment",
    "no unwrap/expect/panic!/unreachable!/literal-indexing in protected non-test code",
    "no allocating calls inside the functions the hotpath manifest pins at 0 allocs",
    "every stats counter field is both updated and surfaced in its snapshot/JSON",
    "every wire-kind const has both an encode-path and a decode-path reference",
];

/// One finding, rendered as `file:line: [lint-id] message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path relative to the analysis root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint identifier (one of [`LINT_IDS`] or `escape-hatch`).
    pub lint: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// Where a counter struct's fields must be updated and surfaced.
#[derive(Debug, Clone)]
pub struct CounterSpec {
    /// Struct whose fields are the counters (e.g. `ServerStats`).
    pub struct_name: String,
    /// File declaring the struct.
    pub decl_file: String,
    /// Files where update evidence (`+=`, `bump(&…)`, `fetch_add`) counts.
    pub update_files: Vec<String>,
    /// File where surface evidence lives.
    pub surface_file: String,
    /// `Some(fn)` — the field must appear inside that function;
    /// `None` — the field must appear inside a string literal (a JSON key).
    pub surface_fn: Option<String>,
}

/// Everything the engine checks, parameterised so the fixture corpus can
/// instantiate each lint against tiny synthetic trees. The committed
/// real-tree configuration is [`AnalyzeConfig::mbdr`].
#[derive(Debug, Clone, Default)]
pub struct AnalyzeConfig {
    /// Path prefixes where `unsafe` is allowed (with a SAFETY comment).
    pub unsafe_boundary: Vec<String>,
    /// Path prefixes whose non-test code must be panic-free.
    pub panic_free: Vec<String>,
    /// `(file, fn)` pairs pinned allocation-free (the hotpath manifest).
    pub hotpath_manifest: Vec<(String, String)>,
    /// Counter structs under the update/surface discipline.
    pub counters: Vec<CounterSpec>,
    /// Path prefix holding the wire codec.
    pub wire_files: Vec<String>,
    /// Prefixes of wire-kind const names (`REQ_`, `RESP_`, …).
    pub wire_const_prefixes: Vec<String>,
}

impl AnalyzeConfig {
    /// The committed configuration for this repository: the invariants of
    /// PRs 4–7 as lints. The hotpath manifest is read from
    /// `crates/analyze/hotpath.manifest` under `root`.
    pub fn mbdr(root: &Path) -> std::io::Result<AnalyzeConfig> {
        let manifest_path = root.join(HOTPATH_MANIFEST);
        let manifest = load_hotpath_manifest(&manifest_path)?;
        Ok(AnalyzeConfig {
            unsafe_boundary: vec!["crates/net/src/sys/".into()],
            panic_free: vec![
                "crates/core/src/wire/".into(),
                "crates/journal/src/".into(),
                "crates/net/src/".into(),
                "crates/locserver/src/durability.rs".into(),
                "crates/locserver/src/durable.rs".into(),
                "crates/locserver/src/lib.rs".into(),
                "crates/locserver/src/service.rs".into(),
                "crates/locserver/src/shard.rs".into(),
                "crates/locserver/src/zones.rs".into(),
            ],
            hotpath_manifest: manifest,
            counters: vec![
                CounterSpec {
                    struct_name: "ServerStats".into(),
                    decl_file: "crates/net/src/stats.rs".into(),
                    update_files: vec![
                        "crates/net/src/reactor.rs".into(),
                        "crates/net/src/server.rs".into(),
                    ],
                    surface_file: "crates/net/src/stats.rs".into(),
                    surface_fn: Some("snapshot".into()),
                },
                CounterSpec {
                    struct_name: "JournalStats".into(),
                    decl_file: "crates/journal/src/stats.rs".into(),
                    update_files: vec!["crates/journal/src/journal.rs".into()],
                    surface_file: "crates/journal/src/stats.rs".into(),
                    surface_fn: Some("snapshot".into()),
                },
                CounterSpec {
                    struct_name: "DurabilityControl".into(),
                    decl_file: "crates/locserver/src/durability.rs".into(),
                    update_files: vec!["crates/locserver/src/durability.rs".into()],
                    surface_file: "crates/locserver/src/durability.rs".into(),
                    surface_fn: Some("snapshot".into()),
                },
                CounterSpec {
                    struct_name: "LinkStats".into(),
                    decl_file: "crates/sim/src/degraded.rs".into(),
                    update_files: vec!["crates/sim/src/degraded.rs".into()],
                    surface_file: "crates/sim/src/lossy.rs".into(),
                    surface_fn: None,
                },
                CounterSpec {
                    struct_name: "IndexStats".into(),
                    decl_file: "crates/locserver/src/service.rs".into(),
                    update_files: vec!["crates/locserver/src/service.rs".into()],
                    surface_file: "crates/bench/src/scale.rs".into(),
                    surface_fn: None,
                },
            ],
            wire_files: vec!["crates/core/src/wire/".into()],
            wire_const_prefixes: vec![
                "REQ_".into(),
                "RESP_".into(),
                "KIND_".into(),
                "FLAG_".into(),
            ],
        })
    }
}

/// Repository-relative path of the committed hot-path manifest.
pub const HOTPATH_MANIFEST: &str = "crates/analyze/hotpath.manifest";

/// Parses the hotpath manifest: one `path fn_name` pair per line, `#`
/// comments and blank lines ignored.
pub fn load_hotpath_manifest(path: &Path) -> std::io::Result<Vec<(String, String)>> {
    let text = std::fs::read_to_string(path)?;
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(file), Some(func), None) => entries.push((file.into(), func.into())),
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("hotpath manifest: bad line `{line}` (want `path fn_name`)"),
                ))
            }
        }
    }
    Ok(entries)
}

/// Walks the analysis root and returns every `.rs` file the engine lints,
/// as sorted root-relative `/`-separated paths. Build output and the
/// analyzer's own fixture corpus (violations on purpose) are excluded.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                files.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Runs every lint over the workspace at `root`. Convenience wrapper around
/// [`collect_sources`] + [`analyze_sources`].
pub fn analyze_workspace(root: &Path, config: &AnalyzeConfig) -> std::io::Result<Vec<Diagnostic>> {
    let files = collect_sources(root)?;
    analyze_sources(root, &files, config)
}

/// Runs every lint over the given root-relative files. The result is sorted
/// by `(file, line, lint, message)` and deduplicated, so the rendered output
/// is deterministic regardless of input order — the property the fixture
/// corpus asserts.
pub fn analyze_sources(
    root: &Path,
    files: &[String],
    config: &AnalyzeConfig,
) -> std::io::Result<Vec<Diagnostic>> {
    let mut lexed: BTreeMap<String, LexedFile> = BTreeMap::new();
    for rel in files {
        let text = std::fs::read_to_string(root.join(rel))?;
        lexed.insert(rel.clone(), LexedFile::lex(text));
    }
    let mut diagnostics = Vec::new();
    for (rel, file) in &lexed {
        lints::escape_hatch::check(rel, file, &mut diagnostics);
        lints::unsafe_confinement::check(rel, file, config, &mut diagnostics);
        lints::panic_freedom::check(rel, file, config, &mut diagnostics);
    }
    lints::hotpath_alloc::check(&lexed, config, &mut diagnostics);
    lints::counter_discipline::check(&lexed, config, &mut diagnostics);
    lints::wire_kinds::check(&lexed, config, &mut diagnostics);

    let suppressed = lints::escape_hatch::suppressions(&lexed);
    diagnostics.retain(|d| {
        !suppressed.iter().any(|(file, line, lint)| {
            *file == d.file && d.lint == *lint && (d.line == *line || d.line == line + 1)
        })
    });
    diagnostics.sort();
    diagnostics.dedup();
    Ok(diagnostics)
}

/// Ascends from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]` — how the binary and `reproduce analyze` find the tree.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
