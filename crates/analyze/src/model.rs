//! Shared structural passes over a [`LexedFile`]: test-code spans, function
//! bodies, struct fields and the escape-hatch directives. Each lint composes
//! these instead of re-deriving structure from raw tokens.

use crate::lexer::{LexedFile, TokenKind};

/// A half-open token-index range `[start, end)`.
pub type TokenRange = (usize, usize);

/// One function item: its name and the token range of its body (braces
/// included).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Line the `fn` keyword is on.
    pub line: u32,
    pub body: TokenRange,
}

/// A parsed `// lint: allow(<id>) reason=<text>` escape hatch.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Line the directive comment starts on; it suppresses diagnostics on
    /// this line and the next.
    pub line: u32,
    pub lint: String,
    /// Whether a non-empty reason was given (`reason=` with text after it).
    pub has_reason: bool,
}

/// Token-index ranges of test-only code: any item annotated `#[cfg(test)]`
/// or `#[test]` (typically the `mod tests { … }` block), so lints about
/// production paths skip them.
pub fn test_spans(lexed: &LexedFile) -> Vec<TokenRange> {
    let mut spans: Vec<TokenRange> = Vec::new();
    let tokens = &lexed.tokens;
    let mut i = 0usize;
    while i < tokens.len() {
        if inside(&spans, i) {
            i += 1;
            continue;
        }
        if lexed.is_punct(i, b'#') && lexed.is_punct(i + 1, b'[') {
            let Some(attr_end) = lexed.matching_bracket(i + 1) else { break };
            if attr_is_test(lexed, i + 2, attr_end) {
                if let Some(span) = item_span(lexed, attr_end + 1) {
                    spans.push(span);
                    i = span.1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// Is token index `i` inside any of `spans`?
pub fn inside(spans: &[TokenRange], i: usize) -> bool {
    spans.iter().any(|&(s, e)| i >= s && i < e)
}

/// Does the attribute body `[from, to)` mark test code? Matches `#[test]`,
/// `#[cfg(test)]` and composed forms such as `#[cfg(all(test, unix))]` —
/// any attribute mentioning the bare ident `test`.
fn attr_is_test(lexed: &LexedFile, from: usize, to: usize) -> bool {
    (from..to).any(|i| lexed.is_ident(i, "test"))
}

/// The token range of the item starting at `from` (further attributes are
/// skipped): through the matching `}` of its first brace group, or through
/// a `;` for brace-less items (`#[cfg(test)] use …;`).
fn item_span(lexed: &LexedFile, from: usize) -> Option<TokenRange> {
    let mut i = from;
    // Skip stacked attributes between the test attribute and the item.
    while lexed.is_punct(i, b'#') && lexed.is_punct(i + 1, b'[') {
        i = lexed.matching_bracket(i + 1)? + 1;
    }
    let mut j = i;
    while j < lexed.tokens.len() {
        if lexed.is_punct(j, b'{') {
            let close = lexed.matching_brace(j)?;
            return Some((from, close + 1));
        }
        if lexed.is_punct(j, b';') {
            return Some((from, j + 1));
        }
        j += 1;
    }
    None
}

/// Every function item in the file: `fn <name> … { body }`. The body is the
/// first brace group after the name (correct for every signature in this
/// workspace; const-generic brace expressions in signatures would fool it).
pub fn fn_spans(lexed: &LexedFile) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let tokens = &lexed.tokens;
    for i in 0..tokens.len() {
        if !lexed.is_ident(i, "fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else { continue };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        let mut j = i + 2;
        let mut open = None;
        while j < tokens.len() {
            if lexed.is_punct(j, b'{') {
                open = Some(j);
                break;
            }
            if lexed.is_punct(j, b';') {
                break; // trait method declaration or extern fn: no body
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let Some(close) = lexed.matching_brace(open) else { continue };
        spans.push(FnSpan {
            name: lexed.token_text(name_tok).to_string(),
            line: tokens[i].line,
            body: (open, close + 1),
        });
    }
    spans
}

/// The innermost function (by narrowest body) containing token index `i`.
pub fn enclosing_fn(spans: &[FnSpan], i: usize) -> Option<&FnSpan> {
    spans.iter().filter(|f| i >= f.body.0 && i < f.body.1).min_by_key(|f| f.body.1 - f.body.0)
}

/// Named fields of `struct <name> { … }`, as `(field, decl_line)` pairs.
/// Returns `None` when the struct is not declared in this file.
pub fn struct_fields(lexed: &LexedFile, name: &str) -> Option<Vec<(String, u32)>> {
    let tokens = &lexed.tokens;
    for i in 0..tokens.len() {
        if !(lexed.is_ident(i, "struct") && lexed.is_ident(i + 1, name)) {
            continue;
        }
        let mut j = i + 2;
        while j < tokens.len() && !lexed.is_punct(j, b'{') {
            if lexed.is_punct(j, b';') {
                return Some(Vec::new()); // unit or tuple struct
            }
            j += 1;
        }
        let open = j;
        let close = lexed.matching_brace(open)?;
        let mut fields = Vec::new();
        let mut depth = 0usize;
        let mut k = open;
        while k < close {
            match tokens[k].kind {
                TokenKind::Punct(b'{') | TokenKind::Punct(b'(') | TokenKind::Punct(b'<') => {
                    depth += 1
                }
                TokenKind::Punct(b'}') | TokenKind::Punct(b')') | TokenKind::Punct(b'>') => {
                    depth = depth.saturating_sub(1)
                }
                TokenKind::Ident if depth == 1 && lexed.is_punct(k + 1, b':') => {
                    let word = lexed.token_text(&tokens[k]);
                    // `pub(crate)` never matches: `pub` precedes `(`, and the
                    // depth guard keeps generic arguments out.
                    if word != "pub" && word != "crate" && !lexed.is_punct(k + 2, b':') {
                        fields.push((word.to_string(), tokens[k].line));
                    }
                }
                _ => {}
            }
            k += 1;
        }
        return Some(fields);
    }
    None
}

/// All escape-hatch directives in the file, plus malformed-directive
/// diagnostics as `(line, message)` pairs.
pub fn allow_directives(lexed: &LexedFile) -> (Vec<AllowDirective>, Vec<(u32, String)>) {
    let mut directives = Vec::new();
    let mut malformed = Vec::new();
    for comment in &lexed.comments {
        let body = comment.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:") else { continue };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            malformed.push((
                comment.line,
                "malformed escape hatch: expected \
                 `// lint: allow(<lint-id>) reason=<why>`"
                    .to_string(),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            malformed.push((comment.line, "malformed escape hatch: unclosed `allow(`".to_string()));
            continue;
        };
        let lint = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim();
        let has_reason =
            tail.strip_prefix("reason=").map(|r| !r.trim().is_empty()).unwrap_or(false);
        directives.push(AllowDirective { line: comment.line, lint, has_reason });
    }
    (directives, malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_modules_and_test_fns() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() { x.unwrap(); }\n}\n\
                   #[test]\nfn standalone() {}\nfn also_live() {}";
        let lexed = LexedFile::lex(src.into());
        let spans = test_spans(&lexed);
        assert_eq!(spans.len(), 2);
        let unwrap_at = lexed.tokens.iter().position(|t| lexed.token_text(t) == "unwrap").unwrap();
        assert!(inside(&spans, unwrap_at));
        let live_at = lexed.tokens.iter().position(|t| lexed.token_text(t) == "also_live").unwrap();
        assert!(!inside(&spans, live_at));
    }

    #[test]
    fn fn_spans_find_bodies_and_skip_bodyless_declarations() {
        let src = "trait T { fn decl(&self); }\nimpl T for U {\n  fn decl(&self) { work() }\n}\n\
                   pub fn free<X: Clone>(x: X) -> Vec<X> { vec![x] }";
        let lexed = LexedFile::lex(src.into());
        let spans = fn_spans(&lexed);
        let names: Vec<_> = spans.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["decl", "free"]);
        let work = lexed.tokens.iter().position(|t| lexed.token_text(t) == "work").unwrap();
        assert_eq!(enclosing_fn(&spans, work).unwrap().name, "decl");
    }

    #[test]
    fn struct_fields_skip_visibility_and_nested_generics() {
        let src = "pub struct Stats {\n  /// doc\n  pub a: u64,\n  pub(crate) b: AtomicU64,\n  \
                   c: HashMap<String, Vec<u8>>,\n}";
        let lexed = LexedFile::lex(src.into());
        let fields: Vec<_> =
            struct_fields(&lexed, "Stats").unwrap().into_iter().map(|(f, _)| f).collect();
        assert_eq!(fields, ["a", "b", "c"]);
        assert!(struct_fields(&lexed, "Absent").is_none());
    }

    #[test]
    fn allow_directives_require_reasons() {
        let src = "// lint: allow(panic-freedom) reason=poisoning is unreachable here\n\
                   x.unwrap();\n// lint: allow(panic-freedom)\ny.unwrap();";
        let lexed = LexedFile::lex(src.into());
        let (directives, malformed) = allow_directives(&lexed);
        assert_eq!(directives.len(), 2);
        assert!(directives[0].has_reason);
        assert!(!directives[1].has_reason);
        assert!(malformed.is_empty());
    }
}
