//! A hand-rolled Rust lexer: the token stream the lints walk.
//!
//! Deliberately *not* a parser — the lints only need tokens with line
//! numbers, comments kept on the side, and a few span helpers (brace
//! matching, function bodies, `#[cfg(test)]` item spans). What it must get
//! exactly right is what trips naive scanners:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings, and raw strings
//!   (`r"…"`, `r#"…"#`, arbitrary `#` depth) — an `unwrap` inside a string
//!   is data, not a call;
//! * the lifetime-vs-char-literal ambiguity (`'a` vs `'a'` vs `'\n'`);
//! * tuple-field access: `a.0.partial_cmp` must lex as `a` `.` `0` `.`
//!   `partial_cmp`, never eating `0.` as a float.
//!
//! The lexer never fails: unexpected bytes become single-character punctuation
//! tokens, which at worst makes a lint conservative on a file that would not
//! compile anyway.

/// What a token is; exactly as much classification as the lints consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `fn`, `unwrap`, …).
    Ident,
    /// Integer literal, suffix included (`0`, `10`, `0x84`, `4usize`).
    Int,
    /// Float literal (`1.5`, `1e-6`, `2.0f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a` in `&'a str`).
    Lifetime,
    /// One punctuation character (`{`, `[`, `.`, `=`, …). Multi-character
    /// operators arrive as consecutive tokens: `::` is `:` `:`.
    Punct(u8),
}

/// One token with its byte span and 1-based line number.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

/// One comment (line or block), kept out of the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//` comments).
    pub end_line: u32,
    /// The comment text, markers included.
    pub text: String,
}

/// A lexed source file: the text, its tokens and its comments.
#[derive(Debug)]
pub struct LexedFile {
    pub text: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl LexedFile {
    /// Lexes `text` (infallible; see the module docs).
    pub fn lex(text: String) -> LexedFile {
        let mut lexer = Lexer { bytes: text.as_bytes(), at: 0, line: 1 };
        let mut tokens = Vec::new();
        let mut comments = Vec::new();
        lexer.run(&mut tokens, &mut comments);
        let comments = comments
            .into_iter()
            .map(|(line, end_line, start, end)| Comment {
                line,
                end_line,
                text: text.get(start..end).unwrap_or("").to_string(),
            })
            .collect();
        LexedFile { text, tokens, comments }
    }

    /// The source text of one token.
    pub fn token_text(&self, token: &Token) -> &str {
        self.text.get(token.start..token.end).unwrap_or("")
    }

    /// True if the token at `index` is the identifier `word`.
    pub fn is_ident(&self, index: usize, word: &str) -> bool {
        self.tokens
            .get(index)
            .is_some_and(|t| t.kind == TokenKind::Ident && self.token_text(t) == word)
    }

    /// True if the token at `index` is the punctuation byte `p`.
    pub fn is_punct(&self, index: usize, p: u8) -> bool {
        self.tokens.get(index).is_some_and(|t| t.kind == TokenKind::Punct(p))
    }

    /// Index of the `}` matching the `{` at token index `open`, if any.
    pub fn matching_brace(&self, open: usize) -> Option<usize> {
        self.matching(open, b'{', b'}')
    }

    /// Index of the `]` matching the `[` at token index `open`, if any.
    pub fn matching_bracket(&self, open: usize) -> Option<usize> {
        self.matching(open, b'[', b']')
    }

    fn matching(&self, open: usize, open_byte: u8, close_byte: u8) -> Option<usize> {
        if !self.is_punct(open, open_byte) {
            return None;
        }
        let mut depth = 0usize;
        for (i, t) in self.tokens.iter().enumerate().skip(open) {
            match t.kind {
                TokenKind::Punct(b) if b == open_byte => depth += 1,
                TokenKind::Punct(b) if b == close_byte => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// True if any comment overlapping lines `[from, to]` contains `needle`.
    pub fn comment_in_lines_contains(&self, from: u32, to: u32, needle: &str) -> bool {
        self.comments.iter().any(|c| c.end_line >= from && c.line <= to && c.text.contains(needle))
    }
}

struct Lexer<'a> {
    bytes: &'a [u8],
    at: usize,
    line: u32,
}

impl Lexer<'_> {
    fn run(&mut self, tokens: &mut Vec<Token>, comments: &mut Vec<(u32, u32, usize, usize)>) {
        while let Some(&b) = self.bytes.get(self.at) {
            let start = self.at;
            let line = self.line;
            match b {
                b'\n' => {
                    self.line += 1;
                    self.at += 1;
                }
                b' ' | b'\t' | b'\r' => self.at += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.at < self.bytes.len() && self.bytes[self.at] != b'\n' {
                        self.at += 1;
                    }
                    comments.push((line, line, start, self.at));
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    comments.push((line, self.line, start, self.at));
                }
                b'"' => {
                    self.string();
                    tokens.push(self.token(TokenKind::Str, start, line));
                }
                b'r' | b'b' if self.raw_or_byte_string_starts() => {
                    let kind = self.string_prefixed();
                    tokens.push(self.token(kind, start, line));
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    tokens.push(self.token(kind, start, line));
                }
                b'0'..=b'9' => {
                    let kind = self.number();
                    tokens.push(self.token(kind, start, line));
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    self.ident();
                    tokens.push(self.token(TokenKind::Ident, start, line));
                }
                other => {
                    self.at += 1;
                    tokens.push(self.token(TokenKind::Punct(other), start, line));
                }
            }
        }
    }

    fn token(&self, kind: TokenKind, start: usize, line: u32) -> Token {
        Token { kind, start, end: self.at, line }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.at + ahead).copied()
    }

    fn block_comment(&mut self) {
        // `/* … */`, nesting tracked (Rust block comments nest).
        self.at += 2;
        let mut depth = 1usize;
        while depth > 0 && self.at < self.bytes.len() {
            match (self.bytes[self.at], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.at += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.at += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.at += 1;
                }
                _ => self.at += 1,
            }
        }
    }

    /// Does the text at the cursor start a raw / byte string or byte char
    /// (`r"`, `r#`, `br"`, `br#`, `b"`, `b'`)? Called on `r` / `b` only.
    fn raw_or_byte_string_starts(&self) -> bool {
        let next = self.peek(1);
        match self.bytes[self.at] {
            b'r' => matches!(next, Some(b'"') | Some(b'#')) && self.raw_hashes_then_quote(1),
            b'b' => match next {
                Some(b'"') | Some(b'\'') => true,
                Some(b'r') => self.raw_hashes_then_quote(2),
                _ => false,
            },
            _ => false,
        }
    }

    /// From offset `from` (past the `r`), skips `#`s and requires a `"` —
    /// distinguishes `r#"…"#` from the raw identifier `r#try`.
    fn raw_hashes_then_quote(&self, from: usize) -> bool {
        let mut i = from;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    /// Lexes `r"…"`, `r#"…"#`, `br"…"`, `b"…"` or `b'…'` (cursor on `r`/`b`).
    fn string_prefixed(&mut self) -> TokenKind {
        if self.bytes[self.at] == b'b' && self.peek(1) == Some(b'\'') {
            self.at += 1;
            self.char_body();
            return TokenKind::Char;
        }
        while matches!(self.bytes.get(self.at), Some(b'r') | Some(b'b')) {
            self.at += 1;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.at += 1;
        }
        if self.peek(0) != Some(b'"') {
            return TokenKind::Ident; // raw identifier (`r#try`); keep going
        }
        if hashes == 0 {
            self.string();
        } else {
            // Raw string: ends at `"` followed by `hashes` `#`s; no escapes.
            self.at += 1;
            while self.at < self.bytes.len() {
                if self.bytes[self.at] == b'\n' {
                    self.line += 1;
                }
                if self.bytes[self.at] == b'"' {
                    let mut n = 0usize;
                    while n < hashes && self.peek(1 + n) == Some(b'#') {
                        n += 1;
                    }
                    if n == hashes {
                        self.at += 1 + hashes;
                        return TokenKind::Str;
                    }
                }
                self.at += 1;
            }
        }
        TokenKind::Str
    }

    /// Lexes a `"…"` string with escapes (cursor on the opening quote).
    fn string(&mut self) {
        self.at += 1;
        while self.at < self.bytes.len() {
            match self.bytes[self.at] {
                b'\\' => self.at += 2,
                b'"' => {
                    self.at += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.at += 1;
                }
                _ => self.at += 1,
            }
        }
    }

    /// Disambiguates `'a'` / `'\n'` (char) from `'a` / `'static` (lifetime);
    /// cursor on the `'`.
    fn char_or_lifetime(&mut self) -> TokenKind {
        let next = self.peek(1);
        let is_ident_start = matches!(next, Some(b'A'..=b'Z') | Some(b'a'..=b'z') | Some(b'_'));
        if is_ident_start {
            // `'x…`: a char literal iff a `'` closes right after one ident
            // run (`'a'`), a lifetime otherwise (`'a`, `'static`).
            let mut i = 2;
            while matches!(
                self.peek(i),
                Some(b'A'..=b'Z') | Some(b'a'..=b'z') | Some(b'0'..=b'9') | Some(b'_')
            ) {
                i += 1;
            }
            if self.peek(i) == Some(b'\'') && i == 2 {
                self.at += i + 1;
                return TokenKind::Char;
            }
            self.at += i;
            return TokenKind::Lifetime;
        }
        self.char_body();
        TokenKind::Char
    }

    /// Consumes the remainder of a char literal (cursor on the `'`).
    fn char_body(&mut self) {
        self.at += 1;
        while self.at < self.bytes.len() {
            match self.bytes[self.at] {
                b'\\' => self.at += 2,
                b'\'' => {
                    self.at += 1;
                    return;
                }
                b'\n' => return, // unterminated; don't swallow the file
                _ => self.at += 1,
            }
        }
    }

    /// Lexes a number. A `.` is consumed only when followed by a digit, so
    /// tuple access (`pair.0.cmp(…)`) never lexes `0.` as a float.
    fn number(&mut self) -> TokenKind {
        let mut float = false;
        if self.bytes[self.at] == b'0'
            && matches!(self.peek(1), Some(b'x') | Some(b'o') | Some(b'b'))
        {
            self.at += 2;
            while matches!(
                self.peek(0),
                Some(b'0'..=b'9') | Some(b'a'..=b'f') | Some(b'A'..=b'F') | Some(b'_')
            ) {
                self.at += 1;
            }
        } else {
            while matches!(self.peek(0), Some(b'0'..=b'9') | Some(b'_')) {
                self.at += 1;
            }
            if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b'0'..=b'9')) {
                float = true;
                self.at += 1;
                while matches!(self.peek(0), Some(b'0'..=b'9') | Some(b'_')) {
                    self.at += 1;
                }
            }
            if matches!(self.peek(0), Some(b'e') | Some(b'E'))
                && matches!(self.peek(1), Some(b'0'..=b'9') | Some(b'+') | Some(b'-'))
            {
                float = true;
                self.at += 2;
                while matches!(self.peek(0), Some(b'0'..=b'9') | Some(b'_')) {
                    self.at += 1;
                }
            }
        }
        // Type suffix (`u8`, `f64`, `usize`): part of the literal token.
        while matches!(
            self.peek(0),
            Some(b'A'..=b'Z') | Some(b'a'..=b'z') | Some(b'0'..=b'9') | Some(b'_')
        ) {
            if matches!(self.peek(0), Some(b'f')) {
                float = true;
            }
            self.at += 1;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn ident(&mut self) {
        while matches!(
            self.peek(0),
            Some(b'A'..=b'Z') | Some(b'a'..=b'z') | Some(b'0'..=b'9') | Some(b'_')
        ) {
            self.at += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(TokenKind, String)> {
        let lexed = LexedFile::lex(text.to_string());
        lexed.tokens.iter().map(|t| (t.kind, lexed.token_text(t).to_string())).collect()
    }

    #[test]
    fn comments_are_kept_out_of_the_stream() {
        let lexed = LexedFile::lex("a // SAFETY: fine\nb /* nested /* deep */ */ c".into());
        let idents: Vec<_> = lexed.tokens.iter().map(|t| lexed.token_text(t).to_string()).collect();
        assert_eq!(idents, ["a", "b", "c"]);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("SAFETY:"));
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r##"x("unwrap", r#"panic!() " quote"#, b"unsafe")"##);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Str).map(|(_, t)| t.clone()).collect();
        assert_eq!(strs.len(), 3);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'y' }");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "'y'"));
        let esc = kinds(r"let c = '\n'; let s = 'static_marker;");
        assert!(esc.iter().any(|(k, t)| *k == TokenKind::Char && t == r"'\n'"));
        assert!(esc.iter().any(|(k, _)| *k == TokenKind::Lifetime));
    }

    #[test]
    fn tuple_access_is_not_a_float() {
        let toks = kinds("a.0.partial_cmp(&b.0)");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Int && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "partial_cmp"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Float));
        let floats = kinds("1.5 + 2e-3 + 7f64");
        assert_eq!(floats.iter().filter(|(k, _)| *k == TokenKind::Float).count(), 3);
    }

    #[test]
    fn brace_and_bracket_matching() {
        let lexed = LexedFile::lex("fn f() { a[1]; { b } }".into());
        let open = lexed.tokens.iter().position(|t| t.kind == TokenKind::Punct(b'{')).unwrap();
        let close = lexed.matching_brace(open).unwrap();
        assert_eq!(close, lexed.tokens.len() - 1);
        let bracket = lexed.tokens.iter().position(|t| t.kind == TokenKind::Punct(b'[')).unwrap();
        assert!(lexed.matching_bracket(bracket).is_some());
    }

    #[test]
    fn lines_are_tracked_across_multiline_strings() {
        let lexed = LexedFile::lex("let s = \"one\ntwo\";\nlet t = 1;".into());
        let t1 = lexed.tokens.iter().find(|t| lexed.token_text(t) == "t").unwrap();
        assert_eq!(t1.line, 3);
    }
}
