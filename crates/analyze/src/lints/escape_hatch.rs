//! The escape-hatch meta-lint: a suppression comment must name a known lint
//! and carry a reason, otherwise it is itself a diagnostic — the policy that
//! keeps blanket allows out of the tree.

use crate::lexer::LexedFile;
use crate::model::allow_directives;
use crate::{Diagnostic, LINT_IDS};
use std::collections::BTreeMap;

pub const ID: &str = "escape-hatch";

/// Emits diagnostics for malformed or reason-less escape hatches.
pub fn check(rel: &str, file: &LexedFile, out: &mut Vec<Diagnostic>) {
    let (directives, malformed) = allow_directives(file);
    for (line, message) in malformed {
        out.push(Diagnostic { file: rel.to_string(), line, lint: ID, message });
    }
    for d in directives {
        if !LINT_IDS.contains(&d.lint.as_str()) {
            out.push(Diagnostic {
                file: rel.to_string(),
                line: d.line,
                lint: ID,
                message: format!(
                    "escape hatch names unknown lint `{}` (known: {})",
                    d.lint,
                    LINT_IDS.join(", ")
                ),
            });
        } else if !d.has_reason {
            out.push(Diagnostic {
                file: rel.to_string(),
                line: d.line,
                lint: ID,
                message: format!(
                    "escape hatch for `{}` is missing its reason (append `reason=<why>`)",
                    d.lint
                ),
            });
        }
    }
}

/// Every effective suppression in the tree, as `(file, directive line,
/// lint id)`: well-formed hatches with a reason, for a known lint. A
/// suppression covers its own line and the next one.
pub fn suppressions(files: &BTreeMap<String, LexedFile>) -> Vec<(String, u32, &'static str)> {
    let mut all = Vec::new();
    for (rel, file) in files {
        let (directives, _) = allow_directives(file);
        for d in directives {
            if !d.has_reason {
                continue;
            }
            if let Some(id) = LINT_IDS.iter().find(|id| **id == d.lint) {
                all.push((rel.clone(), d.line, *id));
            }
        }
    }
    all
}
