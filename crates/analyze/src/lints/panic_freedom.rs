//! panic-freedom: the protected files (wire codec, serving layer, location
//! store ingest/query paths) must not contain panic-capable constructs in
//! non-test code: `.unwrap()` / `.expect(…)`, the `panic!` / `unreachable!`
//! / `todo!` / `unimplemented!` macros, or slice indexing by literal
//! (`bytes[0]`, `bytes[8..10]`) — hostile input must surface as typed
//! errors, never as a panic that takes the serving thread down. Escape
//! hatch: a reasoned `lint: allow(panic-freedom)` comment on the line above.

use crate::lexer::{LexedFile, TokenKind};
use crate::model::{inside, test_spans};
use crate::{AnalyzeConfig, Diagnostic};

pub const ID: &str = "panic-freedom";

/// Macro names that are panic paths by definition.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub fn check(rel: &str, file: &LexedFile, config: &AnalyzeConfig, out: &mut Vec<Diagnostic>) {
    if !config.panic_free.iter().any(|p| rel.starts_with(p.as_str())) {
        return;
    }
    let tests = test_spans(file);
    for (i, token) in file.tokens.iter().enumerate() {
        if inside(&tests, i) {
            continue;
        }
        let push = |out: &mut Vec<Diagnostic>, message: String| {
            out.push(Diagnostic { file: rel.to_string(), line: token.line, lint: ID, message });
        };
        match token.kind {
            TokenKind::Ident => {
                let word = file.token_text(token);
                let after_dot = i > 0 && file.is_punct(i - 1, b'.');
                if after_dot && (word == "unwrap" || word == "expect") {
                    push(out, format!("`.{word}(…)` can panic; return a typed error instead"));
                } else if PANIC_MACROS.contains(&word) && file.is_punct(i + 1, b'!') {
                    push(out, format!("`{word}!` is a panic path in protected code"));
                }
            }
            TokenKind::Punct(b'[') if literal_index(file, i) => {
                push(
                    out,
                    "slice indexing by literal can panic on short input; use `.get(…)`".to_string(),
                );
            }
            _ => {}
        }
    }
}

/// Is the `[` at token index `i` an index expression whose content is made
/// of integer literals and `..` only (`x[0]`, `x[..2]`, `x[8..10]`)?
/// Index position is recognised by the preceding token: an identifier, `)`
/// or `]` — which excludes array literals, attributes and type syntax.
fn literal_index(file: &LexedFile, i: usize) -> bool {
    let indexes_value = i > 0
        && match file.tokens[i - 1].kind {
            TokenKind::Ident => {
                // `x[0]` indexes; `#[allow]`'s `allow[…]` form cannot occur,
                // but keyword-led blocks (`return [0]`, `in [1]`) do not
                // index the keyword's value.
                !matches!(
                    file.token_text(&file.tokens[i - 1]),
                    "return" | "in" | "break" | "else" | "match" | "if" | "while" | "loop"
                )
            }
            TokenKind::Punct(b')') | TokenKind::Punct(b']') => true,
            _ => false,
        };
    if !indexes_value {
        return false;
    }
    let Some(close) = file.matching_bracket(i) else { return false };
    let mut saw_literal = false;
    for j in i + 1..close {
        match file.tokens[j].kind {
            TokenKind::Int => saw_literal = true,
            TokenKind::Punct(b'.') => {}
            _ => return false,
        }
    }
    saw_literal
}
