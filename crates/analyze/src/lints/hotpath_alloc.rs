//! hotpath-alloc: the functions named in the committed hotpath manifest —
//! the same `*_into` / apply / predict set `BENCH_hotpath.json` pins at
//! exactly zero allocations per operation — must not contain allocating
//! calls. This is the static complement of the counting-allocator gate:
//! the gate proves the steady state allocates nothing, this lint points at
//! the offending call the moment it is written.
//!
//! What counts as allocating here: owned-buffer constructors
//! (`Vec::new`, `Vec::with_capacity`, `vec![…]`, `Box::new`, …), owning
//! conversions (`.to_string()`, `.to_owned()`, `.to_vec()`, `.collect()`,
//! `format!`) and `.clone()`. `push` / `extend_from_slice` into
//! caller-owned scratch is the designed idiom (amortised to zero once warm)
//! and is deliberately not flagged — creating the owned buffer is what the
//! lint forbids; filling a warm one is what the dynamic gate measures.

use crate::lexer::{LexedFile, TokenKind};
use crate::{AnalyzeConfig, Diagnostic};
use std::collections::BTreeMap;

pub const ID: &str = "hotpath-alloc";

/// Container types whose associated constructors allocate.
const ALLOC_TYPES: [&str; 10] =
    ["Vec", "VecDeque", "String", "Box", "Rc", "Arc", "HashMap", "HashSet", "BTreeMap", "BTreeSet"];

/// Associated functions on [`ALLOC_TYPES`] that produce an owned buffer.
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];

/// Method calls that allocate an owned value.
const ALLOC_METHODS: [&str; 5] = ["clone", "collect", "to_string", "to_owned", "to_vec"];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

pub fn check(
    files: &BTreeMap<String, LexedFile>,
    config: &AnalyzeConfig,
    out: &mut Vec<Diagnostic>,
) {
    for (path, func) in &config.hotpath_manifest {
        let Some(file) = files.get(path) else {
            out.push(Diagnostic {
                file: path.clone(),
                line: 1,
                lint: ID,
                message: format!("hotpath manifest names `{func}` in a file the tree lacks"),
            });
            continue;
        };
        let spans = crate::model::fn_spans(file);
        let mut found = false;
        for span in spans.iter().filter(|s| &s.name == func) {
            found = true;
            scan_body(path, file, func, span.body, out);
        }
        if !found {
            out.push(Diagnostic {
                file: path.clone(),
                line: 1,
                lint: ID,
                message: format!(
                    "hotpath manifest names fn `{func}` but the file does not define it \
                     (stale manifest after a rename?)"
                ),
            });
        }
    }
}

fn scan_body(
    rel: &str,
    file: &LexedFile,
    func: &str,
    body: (usize, usize),
    out: &mut Vec<Diagnostic>,
) {
    for i in body.0..body.1.min(file.tokens.len()) {
        let token = &file.tokens[i];
        if token.kind != TokenKind::Ident {
            continue;
        }
        let word = file.token_text(token);
        let flag = |out: &mut Vec<Diagnostic>, what: String| {
            out.push(Diagnostic {
                file: rel.to_string(),
                line: token.line,
                lint: ID,
                message: format!(
                    "{what} allocates inside `{func}`, which the hotpath manifest pins \
                     allocation-free"
                ),
            });
        };
        if ALLOC_TYPES.contains(&word) && file.is_punct(i + 1, b':') && file.is_punct(i + 2, b':') {
            if let Some(ctor) = file.tokens.get(i + 3) {
                let ctor_name = file.token_text(ctor);
                if ctor.kind == TokenKind::Ident && ALLOC_CTORS.contains(&ctor_name) {
                    flag(out, format!("`{word}::{ctor_name}`"));
                }
            }
        } else if i > 0 && file.is_punct(i - 1, b'.') && ALLOC_METHODS.contains(&word) {
            flag(out, format!("`.{word}()`"));
        } else if ALLOC_MACROS.contains(&word) && file.is_punct(i + 1, b'!') {
            flag(out, format!("`{word}!`"));
        }
    }
}
