//! The lint catalog. Each module owns one lint id and a `check` pass; the
//! driver in [`crate::analyze_sources`] runs them all and applies the
//! escape-hatch suppressions afterwards.

pub mod counter_discipline;
pub mod escape_hatch;
pub mod hotpath_alloc;
pub mod panic_freedom;
pub mod unsafe_confinement;
pub mod wire_kinds;
