//! unsafe-confinement: `unsafe` tokens may appear only under the configured
//! boundary (`crates/net/src/sys/` — the raw-syscall wrappers), and every
//! `unsafe` site, inside or outside, must carry a `// SAFETY:` comment on
//! its line or within the four lines above. Outside the boundary an escape
//! hatch with a reason is additionally required.

use crate::lexer::{LexedFile, TokenKind};
use crate::{AnalyzeConfig, Diagnostic};

pub const ID: &str = "unsafe-confinement";

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit
/// (room for an interleaved `#[allow(unsafe_code)]` and an escape hatch).
const SAFETY_LOOKBACK_LINES: u32 = 4;

pub fn check(rel: &str, file: &LexedFile, config: &AnalyzeConfig, out: &mut Vec<Diagnostic>) {
    let in_boundary = config.unsafe_boundary.iter().any(|p| rel.starts_with(p.as_str()));
    let mut last_outside_line = 0u32;
    let mut last_safety_line = 0u32;
    for (i, token) in file.tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident || !file.is_ident(i, "unsafe") {
            continue;
        }
        let line = token.line;
        if !in_boundary && line != last_outside_line {
            last_outside_line = line;
            out.push(Diagnostic {
                file: rel.to_string(),
                line,
                lint: ID,
                message: format!(
                    "`unsafe` outside the confinement boundary ({})",
                    config.unsafe_boundary.join(", ")
                ),
            });
        }
        let from = line.saturating_sub(SAFETY_LOOKBACK_LINES);
        if !file.comment_in_lines_contains(from, line, "SAFETY:") && line != last_safety_line {
            last_safety_line = line;
            out.push(Diagnostic {
                file: rel.to_string(),
                line,
                lint: ID,
                message: "`unsafe` without a `// SAFETY:` comment on it or just above it"
                    .to_string(),
            });
        }
    }
}
