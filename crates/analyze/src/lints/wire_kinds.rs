//! wire-kind-exhaustiveness: every wire-kind byte constant in the codec
//! (`const REQ_* / RESP_* / KIND_* / FLAG_*: u8`) must be referenced from
//! both an encode-path function and a decode-path function. A kind that is
//! encoded but never decoded is a frame the server drops as
//! `InvalidKind`; one that is decoded but never encoded is dead protocol
//! surface — either way the codec's two halves have drifted.

use crate::lexer::LexedFile;
use crate::lexer::TokenKind;
use crate::model::{enclosing_fn, fn_spans, inside, test_spans};
use crate::{AnalyzeConfig, Diagnostic};
use std::collections::BTreeMap;

pub const ID: &str = "wire-kind-exhaustiveness";

pub fn check(
    files: &BTreeMap<String, LexedFile>,
    config: &AnalyzeConfig,
    out: &mut Vec<Diagnostic>,
) {
    for (rel, file) in files {
        if !config.wire_files.iter().any(|p| rel.starts_with(p.as_str())) {
            continue;
        }
        check_file(rel, file, config, out);
    }
}

fn check_file(rel: &str, file: &LexedFile, config: &AnalyzeConfig, out: &mut Vec<Diagnostic>) {
    let tests = test_spans(file);
    let fns = fn_spans(file);
    // `const <NAME>: u8 = …` declarations whose name carries a kind prefix.
    let mut consts: Vec<(usize, String, u32)> = Vec::new();
    for i in 0..file.tokens.len() {
        if file.is_ident(i, "const")
            && file.tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident)
            && file.is_punct(i + 2, b':')
            && file.is_ident(i + 3, "u8")
        {
            let name = file.token_text(&file.tokens[i + 1]).to_string();
            if config.wire_const_prefixes.iter().any(|p| name.starts_with(p.as_str())) {
                consts.push((i + 1, name, file.tokens[i + 1].line));
            }
        }
    }
    for (decl_index, name, decl_line) in consts {
        let mut encode_seen = false;
        let mut decode_seen = false;
        for j in 0..file.tokens.len() {
            if j == decl_index || inside(&tests, j) || !file.is_ident(j, &name) {
                continue;
            }
            if let Some(f) = enclosing_fn(&fns, j) {
                let lower = f.name.to_lowercase();
                if lower.contains("encode") || lower.contains("to_wire") {
                    encode_seen = true;
                }
                if lower.contains("decode")
                    || lower.contains("parse")
                    || lower.contains("from_wire")
                {
                    decode_seen = true;
                }
            }
        }
        if !encode_seen {
            out.push(Diagnostic {
                file: rel.to_string(),
                line: decl_line,
                lint: ID,
                message: format!(
                    "wire kind `{name}` has no encode-path reference (a fn named *encode* or \
                     *to_wire*)"
                ),
            });
        }
        if !decode_seen {
            out.push(Diagnostic {
                file: rel.to_string(),
                line: decl_line,
                lint: ID,
                message: format!(
                    "wire kind `{name}` has no decode-path reference (a fn named *decode*, \
                     *parse* or *from_wire*)"
                ),
            });
        }
    }
}
