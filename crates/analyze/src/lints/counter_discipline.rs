//! counter-discipline: every field of the configured stats structs
//! (`ServerStats`, `LinkStats`, `IndexStats`) must be **updated** somewhere
//! on its production path *and* **surfaced** through its snapshot function
//! or JSON document. A counter that is bumped but never reported is dead
//! weight; one that is reported but never bumped silently reads zero — both
//! are exactly the regressions that slip through when a PR adds a field and
//! forgets half of the contract.

use crate::lexer::{LexedFile, TokenKind};
use crate::model::{fn_spans, inside, struct_fields, test_spans};
use crate::{AnalyzeConfig, CounterSpec, Diagnostic};
use std::collections::BTreeMap;

pub const ID: &str = "counter-discipline";

/// Callee names that mutate a counter handed to them by reference
/// (`swap` covers the atomic state byte of the durability machine, which
/// is only ever written through `AtomicU8::swap`).
const UPDATE_CALLEES: [&str; 6] = ["bump", "add", "fetch_add", "fetch_sub", "store", "swap"];

/// How many tokens before `&x.field` the mutating callee may sit
/// (`bump ( & self . stats . field` is the longest committed idiom).
const CALLEE_LOOKBACK: usize = 8;

pub fn check(
    files: &BTreeMap<String, LexedFile>,
    config: &AnalyzeConfig,
    out: &mut Vec<Diagnostic>,
) {
    for spec in &config.counters {
        check_spec(files, spec, out);
    }
}

fn check_spec(files: &BTreeMap<String, LexedFile>, spec: &CounterSpec, out: &mut Vec<Diagnostic>) {
    let Some(decl) = files.get(&spec.decl_file) else {
        out.push(Diagnostic {
            file: spec.decl_file.clone(),
            line: 1,
            lint: ID,
            message: format!("counter spec points at a missing file for `{}`", spec.struct_name),
        });
        return;
    };
    let Some(fields) = struct_fields(decl, &spec.struct_name) else {
        out.push(Diagnostic {
            file: spec.decl_file.clone(),
            line: 1,
            lint: ID,
            message: format!("struct `{}` not found", spec.struct_name),
        });
        return;
    };
    for (field, decl_line) in fields {
        let updated = spec
            .update_files
            .iter()
            .filter_map(|f| files.get(f))
            .any(|file| has_update_evidence(file, &field));
        if !updated {
            out.push(Diagnostic {
                file: spec.decl_file.clone(),
                line: decl_line,
                lint: ID,
                message: format!(
                    "counter `{}.{}` is never updated in {}",
                    spec.struct_name,
                    field,
                    spec.update_files.join(", ")
                ),
            });
        }
        let surfaced = files
            .get(&spec.surface_file)
            .map(|file| has_surface_evidence(file, &field, spec.surface_fn.as_deref()))
            .unwrap_or(false);
        if !surfaced {
            let via = match &spec.surface_fn {
                Some(f) => format!("fn `{f}` in {}", spec.surface_file),
                None => format!("the JSON keys of {}", spec.surface_file),
            };
            out.push(Diagnostic {
                file: spec.decl_file.clone(),
                line: decl_line,
                lint: ID,
                message: format!(
                    "counter `{}.{}` is never surfaced through {via}",
                    spec.struct_name, field
                ),
            });
        }
    }
}

/// Update evidence for `field` in one file's non-test code: `.field += …`,
/// `.field = …` (not `==`), or `.field` as an argument within reach of a
/// mutating callee (`bump(&stats.field)`, `field.fetch_add(…)`).
fn has_update_evidence(file: &LexedFile, field: &str) -> bool {
    let tests = test_spans(file);
    for i in 0..file.tokens.len() {
        if inside(&tests, i) || !file.is_ident(i, field) {
            continue;
        }
        if i == 0 || !file.is_punct(i - 1, b'.') {
            continue;
        }
        if file.is_punct(i + 1, b'+') && file.is_punct(i + 2, b'=') {
            return true;
        }
        if file.is_punct(i + 1, b'=') && !file.is_punct(i + 2, b'=') {
            return true;
        }
        // `field.fetch_add(…)` — the callee follows the field.
        if file.is_punct(i + 1, b'.')
            && file.tokens.get(i + 2).map(|t| t.kind) == Some(TokenKind::Ident)
            && UPDATE_CALLEES.contains(&file.token_text(&file.tokens[i + 2]))
        {
            return true;
        }
        // `bump(&self.stats.field)` — the callee precedes the reference.
        let from = i.saturating_sub(CALLEE_LOOKBACK);
        if (from..i).any(|j| {
            file.tokens[j].kind == TokenKind::Ident
                && UPDATE_CALLEES.contains(&file.token_text(&file.tokens[j]))
        }) {
            return true;
        }
    }
    false
}

/// Surface evidence: the field appears inside the named snapshot function,
/// or (JSON mode) inside any string literal of the surface file.
fn has_surface_evidence(file: &LexedFile, field: &str, surface_fn: Option<&str>) -> bool {
    match surface_fn {
        Some(fn_name) => {
            let spans = fn_spans(file);
            spans.iter().filter(|s| s.name == fn_name).any(|s| {
                (s.body.0..s.body.1.min(file.tokens.len())).any(|i| file.is_ident(i, field))
            })
        }
        None => file
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && file.token_text(t).contains(field)),
    }
}
