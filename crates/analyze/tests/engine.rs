//! Engine self-tests against the fixture corpus: the good tree is clean, the
//! bad tree produces exactly the expected diagnostics, the real workspace is
//! clean under the committed config, and output is deterministic regardless
//! of input order.

use mbdr_analyze::{
    analyze_sources, analyze_workspace, collect_sources, find_workspace_root, AnalyzeConfig,
    CounterSpec,
};
use std::path::{Path, PathBuf};

fn fixture_root(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(which)
}

/// The config both fixture trees are written against: boundary `sys/`,
/// panic-free codec under `codec/`, one manifest fn, one counter struct,
/// `KIND_`-prefixed wire consts.
fn fixture_config(hotpath_manifest: Vec<(&str, &str)>) -> AnalyzeConfig {
    AnalyzeConfig {
        unsafe_boundary: vec!["sys/".into()],
        panic_free: vec!["codec/".into()],
        hotpath_manifest: hotpath_manifest
            .into_iter()
            .map(|(f, func)| (f.to_string(), func.to_string()))
            .collect(),
        counters: vec![CounterSpec {
            struct_name: "Stats".into(),
            decl_file: "stats.rs".into(),
            update_files: vec!["stats.rs".into()],
            surface_file: "stats.rs".into(),
            surface_fn: Some("snapshot".into()),
        }],
        wire_files: vec!["codec/".into()],
        wire_const_prefixes: vec!["KIND_".into()],
    }
}

#[test]
fn good_fixtures_are_clean() {
    let root = fixture_root("good");
    let files = collect_sources(&root).expect("walk good fixtures");
    assert!(files.contains(&"codec/wire.rs".to_string()), "fixture layout moved: {files:?}");
    let config = fixture_config(vec![("hot.rs", "fill_into")]);
    let diagnostics = analyze_sources(&root, &files, &config).expect("analyze good fixtures");
    let rendered: Vec<String> = diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(rendered.is_empty(), "good fixtures must be clean, got:\n{}", rendered.join("\n"));
}

#[test]
fn bad_fixtures_produce_exactly_the_expected_diagnostics() {
    let root = fixture_root("bad");
    let files = collect_sources(&root).expect("walk bad fixtures");
    let config = fixture_config(vec![
        ("hot.rs", "fill_into"),
        ("hot.rs", "renamed_away"),
        ("ghost.rs", "fill_into"),
    ]);
    let diagnostics = analyze_sources(&root, &files, &config).expect("analyze bad fixtures");
    let rendered: Vec<String> = diagnostics.iter().map(|d| d.to_string()).collect();
    let expected = [
        "codec/hatch.rs:5: [escape-hatch] escape hatch for `panic-freedom` is missing its \
         reason (append `reason=<why>`)",
        "codec/hatch.rs:6: [panic-freedom] slice indexing by literal can panic on short input; \
         use `.get(…)`",
        "codec/hatch.rs:10: [escape-hatch] escape hatch names unknown lint `made-up-lint` \
         (known: unsafe-confinement, panic-freedom, hotpath-alloc, counter-discipline, \
         wire-kind-exhaustiveness)",
        "codec/hatch.rs:11: [panic-freedom] slice indexing by literal can panic on short \
         input; use `.get(…)`",
        "codec/hatch.rs:14: [escape-hatch] malformed escape hatch: expected \
         `// lint: allow(<lint-id>) reason=<why>`",
        "codec/wire.rs:5: [wire-kind-exhaustiveness] wire kind `KIND_PONG` has no decode-path \
         reference (a fn named *decode*, *parse* or *from_wire*)",
        "codec/wire.rs:5: [wire-kind-exhaustiveness] wire kind `KIND_PONG` has no encode-path \
         reference (a fn named *encode* or *to_wire*)",
        "codec/wire.rs:12: [panic-freedom] slice indexing by literal can panic on short input; \
         use `.get(…)`",
        "codec/wire.rs:16: [panic-freedom] `panic!` is a panic path in protected code",
        "codec/wire.rs:20: [panic-freedom] `.unwrap(…)` can panic; return a typed error instead",
        "ghost.rs:1: [hotpath-alloc] hotpath manifest names `fill_into` in a file the tree lacks",
        "hot.rs:1: [hotpath-alloc] hotpath manifest names fn `renamed_away` but the file does \
         not define it (stale manifest after a rename?)",
        "hot.rs:5: [hotpath-alloc] `Vec::new` allocates inside `fill_into`, which the hotpath \
         manifest pins allocation-free",
        "hot.rs:9: [hotpath-alloc] `.clone()` allocates inside `fill_into`, which the hotpath \
         manifest pins allocation-free",
        "outside.rs:4: [unsafe-confinement] `unsafe` outside the confinement boundary (sys/)",
        "outside.rs:4: [unsafe-confinement] `unsafe` without a `// SAFETY:` comment on it or \
         just above it",
        "stats.rs:6: [counter-discipline] counter `Stats.ghost` is never surfaced through fn \
         `snapshot` in stats.rs",
        "stats.rs:6: [counter-discipline] counter `Stats.ghost` is never updated in stats.rs",
    ];
    assert_eq!(
        rendered,
        expected,
        "bad-fixture diagnostics drifted;\ngot:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn the_real_tree_is_clean_under_the_committed_config() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(manifest_dir).expect("workspace root above crates/analyze");
    let config = AnalyzeConfig::mbdr(&root).expect("committed config loads");
    assert!(!config.hotpath_manifest.is_empty(), "hotpath manifest must not be empty");
    let diagnostics = analyze_workspace(&root, &config).expect("analyze the real tree");
    let rendered: Vec<String> = diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "the real tree must be clean (the CI gate runs this); got:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn output_is_deterministic_regardless_of_input_order() {
    let root = fixture_root("bad");
    let mut files = collect_sources(&root).expect("walk bad fixtures");
    let config = fixture_config(vec![("hot.rs", "fill_into")]);
    let forward = analyze_sources(&root, &files, &config).expect("forward order");
    files.reverse();
    let reversed = analyze_sources(&root, &files, &config).expect("reversed order");
    assert_eq!(forward, reversed);
    assert!(!forward.is_empty());
}
