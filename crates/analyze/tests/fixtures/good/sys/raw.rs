//! Inside the confinement boundary: `unsafe` is allowed here, and every
//! site carries a SAFETY comment.

/// Reads the value behind `ptr`.
pub fn deref(ptr: *const u32) -> u32 {
    // SAFETY: the caller guarantees `ptr` is valid and aligned.
    unsafe { *ptr }
}
