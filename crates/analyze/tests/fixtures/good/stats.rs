//! A disciplined counter struct: every field is both updated on the
//! production path and surfaced through the snapshot function.

pub struct Stats {
    pub sent: u64,
    pub dropped: u64,
}

impl Stats {
    pub fn record_send(&mut self, delivered: bool) {
        self.sent += 1;
        if !delivered {
            self.dropped += 1;
        }
    }

    pub fn snapshot(&self) -> (u64, u64) {
        (self.sent, self.dropped)
    }
}
