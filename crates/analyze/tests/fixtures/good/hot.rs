//! An allocation-free hot-path function: fills the caller's scratch buffer
//! and creates no owned storage of its own.

/// Appends each doubled value into `out`.
pub fn fill_into(src: &[u64], out: &mut Vec<u64>) {
    out.clear();
    for v in src {
        out.push(v * 2);
    }
}
