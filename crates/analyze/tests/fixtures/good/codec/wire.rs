//! A panic-free codec: every wire kind has an encode and a decode arm,
//! hostile input surfaces as `None`, and the test module may use the
//! panicky shorthands the production path must not.

pub const KIND_PING: u8 = 1;
pub const KIND_PONG: u8 = 2;

pub fn encode_into(pong: bool, buf: &mut Vec<u8>) {
    buf.push(if pong { KIND_PONG } else { KIND_PING });
}

pub fn decode(bytes: &[u8]) -> Option<bool> {
    match *bytes.first()? {
        KIND_PING => Some(false),
        KIND_PONG => Some(true),
        _ => None,
    }
}

pub fn first_byte(bytes: &[u8]) -> u8 {
    // lint: allow(panic-freedom) reason=fixture for a correctly reasoned hatch
    bytes[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        super::encode_into(true, &mut buf);
        assert_eq!(buf[0], super::KIND_PONG);
        assert!(super::decode(&buf).unwrap());
    }
}
