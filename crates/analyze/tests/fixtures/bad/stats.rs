//! An undisciplined counter: `ghost` is declared but never bumped and never
//! surfaced by the snapshot.

pub struct Stats {
    pub sent: u64,
    pub ghost: u64,
}

impl Stats {
    pub fn record_send(&mut self) {
        self.sent += 1;
    }

    pub fn snapshot(&self) -> u64 {
        self.sent
    }
}
