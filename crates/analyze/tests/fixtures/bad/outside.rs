//! `unsafe` outside the boundary, with no SAFETY comment: two findings.

pub fn peek(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}
