//! A manifest function that allocates: builds an owned temporary and clones
//! it instead of filling the caller's buffer.

pub fn fill_into(src: &[u64], out: &mut Vec<u64>) {
    let mut tmp = Vec::new();
    for v in src {
        tmp.push(v * 2);
    }
    *out = tmp.clone();
}
