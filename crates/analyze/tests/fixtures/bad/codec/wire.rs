//! A drifted codec: `KIND_PONG` is declared but has neither an encode nor a
//! decode arm, and the decode path panics on hostile input.

pub const KIND_PING: u8 = 1;
pub const KIND_PONG: u8 = 2;

pub fn encode_into(buf: &mut Vec<u8>) {
    buf.push(KIND_PING);
}

pub fn decode(bytes: &[u8]) -> u8 {
    let first = bytes[0];
    if first == KIND_PING {
        return first;
    }
    panic!("unknown kind");
}

pub fn helper(x: Option<u8>) -> u8 {
    x.unwrap()
}
