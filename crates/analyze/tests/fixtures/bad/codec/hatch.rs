//! Escape-hatch misuse: a hatch without a reason (which therefore does not
//! suppress), a hatch naming an unknown lint, and a malformed directive.

pub fn first(bytes: &[u8]) -> u8 {
    // lint: allow(panic-freedom)
    bytes[0]
}

pub fn second(bytes: &[u8]) -> u8 {
    // lint: allow(made-up-lint) reason=no such lint
    bytes[1]
}

// lint: deny(panic-freedom)
pub fn third() {}
