//! Hotspot-skew equivalence: the dense cell storage must answer exactly like
//! a full scan when placement is pathologically skewed — a large fraction of
//! all entries crowded into one or a few grid cells, the regime where the
//! per-cell segments grow through many size classes, the seen-mask dedup does
//! real work, and swap-remove bookkeeping is exercised hardest.
//!
//! Two layers:
//!
//! * a deterministic 100 000-entry test (hotspot placement + churn +
//!   LCG-randomized queries) requiring **bit-identical** answers — exact id
//!   sets for rect queries, exact (`==`, no tolerance) distance sequences for
//!   nearest — against a brute-force reference scan and a bulk-loaded
//!   [`RTree`];
//! * a property test over randomized crowded placements at a size proptest
//!   can afford to shrink.

use mbdr_geo::{Aabb, Point};
use mbdr_spatial::{MovingIndex, RTree, SpatialIndex};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// SplitMix64 — deterministic, dependency-free stream for the big test.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

const CELL: f64 = 250.0;

/// ~30 % of entries land inside a 4×2-cell hotspot block near the origin,
/// the rest spread over a ±10 km world — the same skew shape as the
/// `mbdr-sim` scale workload.
fn hotspot_box(rng: &mut Rng) -> Aabb {
    let center = if rng.next_f64() < 0.3 {
        Point::new(rng.next_f64() * 4.0 * CELL, rng.next_f64() * 2.0 * CELL)
    } else {
        Point::new((rng.next_f64() * 2.0 - 1.0) * 10_000.0, (rng.next_f64() * 2.0 - 1.0) * 10_000.0)
    };
    Aabb::around(center, 1.0 + rng.next_f64() * 40.0)
}

fn brute_rect(items: &BTreeMap<usize, Aabb>, q: &Aabb) -> Vec<usize> {
    items.iter().filter(|(_, b)| b.intersects(q)).map(|(&k, _)| k).collect()
}

fn brute_nearest_distances(items: &BTreeMap<usize, Aabb>, p: &Point, k: usize) -> Vec<f64> {
    let mut d: Vec<f64> = items.values().map(|b| b.distance_to_point(p)).collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d.truncate(k);
    d
}

#[test]
fn hundred_thousand_hotspot_entries_answer_bit_identically_to_a_full_scan() {
    const N: usize = 100_000;
    let mut rng = Rng(0xC0FF_EE00_2026_0808);
    let mut index: MovingIndex<usize> = MovingIndex::new(CELL);
    let mut reference: BTreeMap<usize, Aabb> = BTreeMap::new();
    for key in 0..N {
        let b = hotspot_box(&mut rng);
        index.insert(key, b);
        reference.insert(key, b);
    }
    // Churn: move 5 % of the fleet (hotspot → elsewhere and vice versa) and
    // remove 2 %, so the swap-remove + placement-patch paths run at scale.
    for _ in 0..N / 20 {
        let key = (rng.next_u64() as usize) % N;
        let b = hotspot_box(&mut rng);
        index.insert(key, b);
        reference.insert(key, b);
    }
    for _ in 0..N / 50 {
        let key = (rng.next_u64() as usize) % N;
        index.remove(&key);
        reference.remove(&key);
    }
    assert_eq!(index.len(), reference.len());

    let items: Vec<(Aabb, usize)> = reference.iter().map(|(&k, &b)| (b, k)).collect();
    let tree = RTree::bulk_load(items);

    for i in 0..40 {
        // Even queries aim at the hotspot block, odd ones anywhere.
        let center = if i % 2 == 0 {
            Point::new(rng.next_f64() * 4.0 * CELL, rng.next_f64() * 2.0 * CELL)
        } else {
            Point::new(
                (rng.next_f64() * 2.0 - 1.0) * 10_000.0,
                (rng.next_f64() * 2.0 - 1.0) * 10_000.0,
            )
        };
        let query = Aabb::around(center, CELL * (0.5 + rng.next_f64() * 4.0));
        let expected = brute_rect(&reference, &query);
        let got: Vec<usize> = index.query_rect(&query).iter().map(|e| e.item).collect();
        assert_eq!(got, expected, "rect query {i} ({query:?})");
        let mut tree_got: Vec<usize> = tree.query_rect(&query).iter().map(|e| e.item).collect();
        tree_got.sort_unstable();
        assert_eq!(tree_got, expected, "rtree rect query {i}");

        let k = 1 + (rng.next_u64() as usize) % 16;
        let expected_d = brute_nearest_distances(&reference, &center, k);
        let got_d: Vec<f64> = index.nearest(&center, k).iter().map(|n| n.distance).collect();
        // Bitwise equality: both sides compute `Aabb::distance_to_point`, so
        // any deviation means the index dropped or fabricated a candidate.
        assert_eq!(got_d, expected_d, "nearest query {i} (k={k})");
        let tree_d: Vec<f64> = tree.nearest(&center, k).iter().map(|n| n.distance).collect();
        assert_eq!(tree_d, expected_d, "rtree nearest query {i} (k={k})");
    }
}

/// A crowded placement for proptest: every box near the origin, so most of
/// the index lives in a handful of cells.
fn arb_crowded_box() -> impl Strategy<Value = Aabb> {
    (0.0..600.0f64, 0.0..400.0f64, 0.0..80.0f64, 0.0..80.0f64)
        .prop_map(|(x, y, w, h)| Aabb::new(Point::new(x, y), Point::new(x + w, y + h)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn crowded_cells_stay_equivalent_under_churn(
        initial in proptest::collection::vec(arb_crowded_box(), 1..400),
        moves in proptest::collection::vec((0usize..400, arb_crowded_box()), 0..120),
        removals in proptest::collection::vec(0usize..400, 0..80),
        query in arb_crowded_box(),
        k in 1usize..10
    ) {
        // Cell size much larger than the placement spread: everything shares
        // very few cells, maximizing per-cell crowding.
        let mut index: MovingIndex<usize> = MovingIndex::new(500.0);
        let mut reference: BTreeMap<usize, Aabb> = BTreeMap::new();
        let n = initial.len();
        for (key, b) in initial.iter().enumerate() {
            index.insert(key, *b);
            reference.insert(key, *b);
        }
        for (raw, b) in &moves {
            index.insert(raw % n, *b);
            reference.insert(raw % n, *b);
        }
        for raw in &removals {
            index.remove(&(raw % n));
            reference.remove(&(raw % n));
        }
        prop_assert_eq!(index.len(), reference.len());

        let got: Vec<usize> = index.query_rect(&query).iter().map(|e| e.item).collect();
        prop_assert_eq!(&got, &brute_rect(&reference, &query));
        if !reference.is_empty() {
            let tree = RTree::bulk_load(reference.iter().map(|(&k, &b)| (b, k)).collect::<Vec<_>>());
            let mut tree_got: Vec<usize> = tree.query_rect(&query).iter().map(|e| e.item).collect();
            tree_got.sort_unstable();
            prop_assert_eq!(&got, &tree_got);

            let p = query.center();
            let expected = brute_nearest_distances(&reference, &p, k);
            let nn: Vec<f64> = index.nearest(&p, k).iter().map(|x| x.distance).collect();
            prop_assert_eq!(nn, expected, "bitwise nearest distance mismatch");
        }
    }
}
