//! Property tests: all spatial indexes must agree with brute force — and,
//! therefore, with each other. The location service relies on this
//! index-agnostic guarantee: its sharded store answers queries through a
//! spatial index but must return exactly what a full scan would.

use mbdr_geo::{Aabb, Point};
use mbdr_spatial::{GridIndex, MovingIndex, RTree, SpatialIndex};
use proptest::prelude::*;

fn arb_box() -> impl Strategy<Value = Aabb> {
    (-2_000.0..2_000.0f64, -2_000.0..2_000.0f64, 0.0..200.0f64, 0.0..200.0f64)
        .prop_map(|(x, y, w, h)| Aabb::new(Point::new(x, y), Point::new(x + w, y + h)))
}

fn brute_rect(items: &[(Aabb, usize)], q: &Aabb) -> Vec<usize> {
    let mut v: Vec<usize> =
        items.iter().filter(|(b, _)| b.intersects(q)).map(|(_, i)| *i).collect();
    v.sort_unstable();
    v
}

fn brute_nearest(items: &[(Aabb, usize)], p: &Point, k: usize) -> Vec<f64> {
    let mut d: Vec<f64> = items.iter().map(|(b, _)| b.distance_to_point(p)).collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d.truncate(k);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_rect_query_equals_brute_force(
        boxes in proptest::collection::vec(arb_box(), 1..200),
        query in arb_box()
    ) {
        let items: Vec<(Aabb, usize)> = boxes.into_iter().enumerate().map(|(i, b)| (b, i)).collect();
        let tree = RTree::bulk_load(items.clone());
        let mut got: Vec<usize> = tree.query_rect(&query).iter().map(|e| e.item).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute_rect(&items, &query));
    }

    #[test]
    fn grid_rect_query_equals_brute_force(
        boxes in proptest::collection::vec(arb_box(), 1..200),
        query in arb_box(),
        cell in 10.0..500.0f64
    ) {
        let items: Vec<(Aabb, usize)> = boxes.into_iter().enumerate().map(|(i, b)| (b, i)).collect();
        let grid = GridIndex::bulk_load(cell, items.clone());
        let mut got: Vec<usize> = grid.query_rect(&query).iter().map(|e| e.item).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute_rect(&items, &query));
    }

    #[test]
    fn rtree_nearest_distances_equal_brute_force(
        boxes in proptest::collection::vec(arb_box(), 1..150),
        px in -3_000.0..3_000.0f64,
        py in -3_000.0..3_000.0f64,
        k in 1usize..10
    ) {
        let items: Vec<(Aabb, usize)> = boxes.into_iter().enumerate().map(|(i, b)| (b, i)).collect();
        let tree = RTree::bulk_load(items.clone());
        let p = Point::new(px, py);
        let expected = brute_nearest(&items, &p, k);
        let got: Vec<f64> = tree.nearest(&p, k).iter().map(|n| n.distance).collect();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected.iter()) {
            prop_assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn grid_nearest_distances_equal_brute_force(
        boxes in proptest::collection::vec(arb_box(), 1..100),
        px in -3_000.0..3_000.0f64,
        py in -3_000.0..3_000.0f64,
        k in 1usize..6,
        cell in 20.0..400.0f64
    ) {
        let items: Vec<(Aabb, usize)> = boxes.into_iter().enumerate().map(|(i, b)| (b, i)).collect();
        let grid = GridIndex::bulk_load(cell, items.clone());
        let p = Point::new(px, py);
        let expected = brute_nearest(&items, &p, k);
        let got: Vec<f64> = grid.nearest(&p, k).iter().map(|n| n.distance).collect();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected.iter()) {
            prop_assert!((g - e).abs() < 1e-6);
        }
    }

    #[test]
    fn grid_and_rtree_return_identical_rect_result_sets(
        boxes in proptest::collection::vec(arb_box(), 1..200),
        query in arb_box(),
        cell in 10.0..500.0f64
    ) {
        // Direct cross-index equality (not just each-vs-brute-force): the
        // exact guarantee the index-backed location service relies on.
        let items: Vec<(Aabb, usize)> = boxes.into_iter().enumerate().map(|(i, b)| (b, i)).collect();
        let tree = RTree::bulk_load(items.clone());
        let grid = GridIndex::bulk_load(cell, items);
        let mut a: Vec<usize> = tree.query_rect(&query).iter().map(|e| e.item).collect();
        let mut b: Vec<usize> = grid.query_rect(&query).iter().map(|e| e.item).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn grid_and_rtree_nearest_distances_are_identical(
        boxes in proptest::collection::vec(arb_box(), 1..100),
        px in -3_000.0..3_000.0f64,
        py in -3_000.0..3_000.0f64,
        k in 1usize..8
    ) {
        // Nearest-k result sets can legitimately differ on exact distance
        // ties, so the cross-index guarantee is on the distance sequence.
        let items: Vec<(Aabb, usize)> = boxes.into_iter().enumerate().map(|(i, b)| (b, i)).collect();
        let tree = RTree::bulk_load(items.clone());
        let grid = GridIndex::bulk_load(75.0, items);
        let p = Point::new(px, py);
        let a: Vec<f64> = tree.nearest(&p, k).iter().map(|n| n.distance).collect();
        let b: Vec<f64> = grid.nearest(&p, k).iter().map(|n| n.distance).collect();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-6, "distance mismatch: {} vs {}", x, y);
        }
    }

    #[test]
    fn moving_index_after_churn_equals_brute_force_and_rtree(
        initial in proptest::collection::vec(arb_box(), 1..120),
        moves in proptest::collection::vec((0usize..120, arb_box()), 0..60),
        removals in proptest::collection::vec(0usize..120, 0..40),
        query in arb_box(),
        cell in 20.0..400.0f64,
        k in 1usize..8
    ) {
        // Replay insert → move → remove churn (the location-service update
        // pattern) and require the surviving entries to answer exactly like a
        // freshly bulk-loaded RTree and like brute force.
        let mut moving: MovingIndex<usize> = MovingIndex::new(cell);
        let mut current: std::collections::BTreeMap<usize, Aabb> = Default::default();
        for (i, b) in initial.iter().enumerate() {
            moving.insert(i, *b);
            current.insert(i, *b);
        }
        let n = initial.len();
        for (raw, b) in &moves {
            let key = raw % n;
            moving.insert(key, *b);
            current.insert(key, *b);
        }
        for raw in &removals {
            let key = raw % n;
            moving.remove(&key);
            current.remove(&key);
        }
        let items: Vec<(Aabb, usize)> = current.iter().map(|(&k, &b)| (b, k)).collect();
        prop_assert_eq!(moving.len(), items.len());

        // Rect: exact result-set equality against brute force and the RTree.
        let mut got: Vec<usize> = moving.query_rect(&query).iter().map(|e| e.item).collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &brute_rect(&items, &query));
        if !items.is_empty() {
            let tree = RTree::bulk_load(items.clone());
            let mut tree_got: Vec<usize> = tree.query_rect(&query).iter().map(|e| e.item).collect();
            tree_got.sort_unstable();
            prop_assert_eq!(&got, &tree_got);

            // Nearest: identical distance sequences.
            let p = query.center();
            let expected = brute_nearest(&items, &p, k);
            let nn: Vec<f64> = moving.nearest(&p, k).iter().map(|x| x.distance).collect();
            prop_assert_eq!(nn.len(), expected.len());
            for (g, e) in nn.iter().zip(expected.iter()) {
                prop_assert!((g - e).abs() < 1e-6, "nearest distance {} vs {}", g, e);
            }
        }
    }

    #[test]
    fn both_indexes_agree_on_radius_queries(
        boxes in proptest::collection::vec(arb_box(), 1..150),
        px in -2_000.0..2_000.0f64,
        py in -2_000.0..2_000.0f64,
        radius in 1.0..800.0f64
    ) {
        let items: Vec<(Aabb, usize)> = boxes.into_iter().enumerate().map(|(i, b)| (b, i)).collect();
        let tree = RTree::bulk_load(items.clone());
        let grid = GridIndex::bulk_load(100.0, items);
        let p = Point::new(px, py);
        let mut a: Vec<usize> = tree.query_within(&p, radius).iter().map(|e| e.item).collect();
        let mut b: Vec<usize> = grid.query_within(&p, radius).iter().map(|e| e.item).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
