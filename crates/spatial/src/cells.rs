//! Cache-conscious cell storage shared by the grid indexes.
//!
//! Both [`GridIndex`](crate::GridIndex) and [`MovingIndex`](crate::MovingIndex)
//! map grid-cell coordinates to per-cell candidate lists. A
//! `HashMap<(i64, i64), Vec<_>>` does that with one heap allocation per
//! occupied cell and a SipHash invocation per probe — at 10⁵–10⁶ objects the
//! query path spends its time pointer-chasing. This module replaces it with:
//!
//! * `CellTable` — an open-addressed (linear-probing, tombstone-deleting)
//!   hash table from cell coordinates to a small `Copy` payload, using a
//!   multiply-xor integer hash. One flat slot array, no per-cell boxes; the
//!   payload points into whatever flat arena the owning index keeps.
//! * [`SeenScratch`] — a generation-stamped seen-mask that deduplicates the
//!   candidate walk in O(candidates): an entry registered in many visited
//!   cells is accepted on first visit and skipped afterwards, replacing the
//!   `sort_unstable + dedup` pass (O(c·log c), and resorting *every* query)
//!   the indexes used before. Bumping one generation counter resets the mask
//!   without touching the stamp array.
//!
//! Everything here is allocation-free in steady state: the table only grows
//! when new cells appear (tombstones left by emptied cells are reused when
//! the same — or any probing — coordinate is re-inserted), and the stamp
//! array only grows to the owning index's high-water entry count.

/// Probe states of one table slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    Tombstone,
    Live,
}

/// One slot: coordinate plus the caller's payload.
#[derive(Debug, Clone, Copy)]
struct TableSlot<P> {
    state: SlotState,
    coord: (i64, i64),
    payload: P,
}

/// An open-addressed hash table from grid-cell coordinates to a small `Copy`
/// payload (a segment reference, a chain head, …).
#[derive(Debug, Clone)]
pub(crate) struct CellTable<P> {
    slots: Vec<TableSlot<P>>,
    mask: usize,
    live: usize,
    tombstones: usize,
}

/// Multiply-xor avalanche over the two cell coordinates — a couple of
/// multiplies instead of SipHash's rounds; adjacent cells land in unrelated
/// slots so hotspot blocks do not cluster in the table.
#[inline]
fn hash_coord(coord: (i64, i64)) -> u64 {
    let x = (coord.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let y = (coord.1 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    let mut h = x ^ y.rotate_left(31);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

impl<P: Copy + Default> CellTable<P> {
    pub(crate) fn new() -> Self {
        CellTable { slots: Vec::new(), mask: 0, live: 0, tombstones: 0 }
    }

    /// Number of live (occupied) cells.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    #[inline]
    fn home(&self, coord: (i64, i64)) -> usize {
        (hash_coord(coord) as usize) & self.mask
    }

    /// The payload stored for `coord`, if the cell is occupied.
    #[inline]
    pub(crate) fn get(&self, coord: (i64, i64)) -> Option<&P> {
        if self.slots.is_empty() {
            return None;
        }
        let mut at = self.home(coord);
        loop {
            let slot = &self.slots[at];
            match slot.state {
                SlotState::Empty => return None,
                SlotState::Live if slot.coord == coord => return Some(&slot.payload),
                _ => at = (at + 1) & self.mask,
            }
        }
    }

    /// Mutable access to the payload stored for `coord`.
    #[inline]
    pub(crate) fn get_mut(&mut self, coord: (i64, i64)) -> Option<&mut P> {
        if self.slots.is_empty() {
            return None;
        }
        let mut at = self.home(coord);
        loop {
            match self.slots[at].state {
                SlotState::Empty => return None,
                SlotState::Live if self.slots[at].coord == coord => {
                    return Some(&mut self.slots[at].payload)
                }
                _ => at = (at + 1) & self.mask,
            }
        }
    }

    /// Inserts a cell that is known to be absent (callers `get` first). The
    /// first tombstone on the probe path is reused, so cells that empty and
    /// refill at the same coordinates do not grow the table.
    pub(crate) fn insert(&mut self, coord: (i64, i64), payload: P) {
        self.reserve_one();
        let mut at = self.home(coord);
        let mut target = None;
        loop {
            match self.slots[at].state {
                SlotState::Empty => break,
                SlotState::Tombstone => {
                    if target.is_none() {
                        target = Some(at);
                    }
                    at = (at + 1) & self.mask;
                }
                SlotState::Live => {
                    debug_assert!(self.slots[at].coord != coord, "insert of an occupied cell");
                    at = (at + 1) & self.mask;
                }
            }
        }
        let at = match target {
            Some(t) => {
                self.tombstones -= 1;
                t
            }
            None => at,
        };
        self.slots[at] = TableSlot { state: SlotState::Live, coord, payload };
        self.live += 1;
    }

    /// Removes a cell, leaving a tombstone on its slot. Returns the payload
    /// if the cell was occupied.
    pub(crate) fn remove(&mut self, coord: (i64, i64)) -> Option<P> {
        if self.slots.is_empty() {
            return None;
        }
        let mut at = self.home(coord);
        loop {
            match self.slots[at].state {
                SlotState::Empty => return None,
                SlotState::Live if self.slots[at].coord == coord => {
                    let payload = self.slots[at].payload;
                    self.slots[at].state = SlotState::Tombstone;
                    self.live -= 1;
                    self.tombstones += 1;
                    return Some(payload);
                }
                _ => at = (at + 1) & self.mask,
            }
        }
    }

    /// Iterates over the live cells in slot order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = ((i64, i64), &P)> {
        self.slots.iter().filter(|s| s.state == SlotState::Live).map(|s| (s.coord, &s.payload))
    }

    /// Iterates over the live cells in slot order, payloads mutable.
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = ((i64, i64), &mut P)> {
        self.slots
            .iter_mut()
            .filter(|s| s.state == SlotState::Live)
            .map(|s| (s.coord, &mut s.payload))
    }

    /// Grows (and drops tombstones) when live + tombstones would pass 3/4 of
    /// capacity — the probe-length guarantee of linear probing.
    fn reserve_one(&mut self) {
        let cap = self.slots.len();
        if cap == 0 || (self.live + self.tombstones + 1) * 4 > cap * 3 {
            let new_cap = (cap * 2).max(16).max(((self.live + 1) * 2).next_power_of_two());
            let old = std::mem::replace(
                &mut self.slots,
                vec![
                    TableSlot { state: SlotState::Empty, coord: (0, 0), payload: P::default() };
                    new_cap
                ],
            );
            self.mask = new_cap - 1;
            self.tombstones = 0;
            for slot in old {
                if slot.state == SlotState::Live {
                    let mut at = self.home(slot.coord);
                    while self.slots[at].state == SlotState::Live {
                        at = (at + 1) & self.mask;
                    }
                    self.slots[at] = slot;
                }
            }
        }
    }
}

/// Caller-owned scratch for the candidate walk: a generation-stamped seen
/// mask (per-entry dedup in O(1)) plus a reusable id buffer for the
/// key-ordered query forms.
///
/// The scratch belongs to the *reader*, not the index: queries run under
/// shared locks, so every reader (connection, query thread) holds its own
/// and reuses it across queries — after warm-up, a query performs zero heap
/// allocations. One scratch may serve indexes of different sizes; the stamp
/// array grows to the largest entry count it has seen.
#[derive(Debug, Default)]
pub struct SeenScratch {
    /// `stamps[dense_id] == generation` ⇔ the entry was visited this query.
    stamps: Vec<u32>,
    generation: u32,
    /// Candidates inspected (one per entry per overlapped cell).
    inspected: u64,
    /// Candidates accepted (first visits — the unique candidate count).
    unique: u64,
    /// Reusable id buffer for the sorted-output query forms.
    pub(crate) ids: Vec<u32>,
}

impl SeenScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        SeenScratch::default()
    }

    /// Starts a new query over an index with `entries` dense ids: bumps the
    /// generation so every previous stamp becomes stale at once.
    pub(crate) fn begin(&mut self, entries: usize) {
        if self.stamps.len() < entries {
            self.stamps.resize(entries, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // The u32 generation lapped: clear the stamps once so a stamp
            // from 2^32 queries ago cannot read as "seen this query".
            self.stamps.fill(0);
            self.generation = 1;
        }
    }

    /// `true` exactly once per dense id per query — the dedup primitive.
    #[inline]
    pub(crate) fn first_visit(&mut self, id: u32) -> bool {
        self.inspected += 1;
        let stamp = &mut self.stamps[id as usize];
        if *stamp == self.generation {
            false
        } else {
            *stamp = self.generation;
            self.unique += 1;
            true
        }
    }

    /// Cumulative `(candidates inspected, unique candidates)` over every
    /// query this scratch has served. The ratio is the observable cost of
    /// placement skew: entries spanning many visited cells are inspected
    /// once per cell but deduplicated to one candidate.
    pub fn dedup_counters(&self) -> (u64, u64) {
        (self.inspected, self.unique)
    }

    /// Resets the dedup counters (the stamp state is unaffected).
    pub fn reset_counters(&mut self) {
        self.inspected = 0;
        self.unique = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrips_inserts_lookups_and_removals() {
        let mut t: CellTable<u32> = CellTable::new();
        assert_eq!(t.len(), 0);
        assert!(t.get((0, 0)).is_none());
        for i in 0..500i64 {
            t.insert((i, -i * 7), i as u32);
        }
        assert_eq!(t.len(), 500);
        for i in 0..500i64 {
            assert_eq!(t.get((i, -i * 7)), Some(&(i as u32)));
        }
        assert!(t.get((1, 1)).is_none());
        *t.get_mut((3, -21)).unwrap() = 999;
        assert_eq!(t.get((3, -21)), Some(&999));
        for i in 0..250i64 {
            assert_eq!(t.remove((i, -i * 7)), Some(if i == 3 { 999 } else { i as u32 }));
        }
        assert_eq!(t.len(), 250);
        assert_eq!(t.remove((0, 0)), None, "double remove");
        for i in 250..500i64 {
            assert_eq!(t.get((i, -i * 7)), Some(&(i as u32)), "survivors intact");
        }
        assert_eq!(t.iter().count(), 250);
    }

    #[test]
    fn emptied_cells_leave_reusable_tombstones() {
        let mut t: CellTable<u32> = CellTable::new();
        for i in 0..64i64 {
            t.insert((i, 0), i as u32);
        }
        let cap_before = t.slots.len();
        // Churn the same coordinates many times over: the table must not
        // grow (tombstones are reused), which is what keeps the steady-state
        // reindex path of the moving index allocation-free.
        for _ in 0..1_000 {
            for i in 0..64i64 {
                t.remove((i, 0));
                t.insert((i, 0), i as u32);
            }
        }
        assert_eq!(t.slots.len(), cap_before, "steady-state churn must not grow the table");
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn seen_scratch_dedups_per_generation() {
        let mut seen = SeenScratch::new();
        seen.begin(8);
        assert!(seen.first_visit(3));
        assert!(!seen.first_visit(3));
        assert!(seen.first_visit(7));
        seen.begin(8);
        assert!(seen.first_visit(3), "new generation resets the mask");
        assert_eq!(seen.dedup_counters(), (4, 3));
        seen.reset_counters();
        assert_eq!(seen.dedup_counters(), (0, 0));
        seen.begin(1024);
        assert!(seen.first_visit(1023), "mask grows to the index size");
    }
}
