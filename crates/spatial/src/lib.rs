//! # mbdr-spatial — from-scratch spatial indexes
//!
//! The paper's map matcher finds candidate road links "by querying a spatial
//! index for the map information with the mobile object's current position"
//! (Section 3). This crate provides that substrate, built from scratch on top
//! of [`mbdr_geo`]:
//!
//! * [`GridIndex`] — a uniform grid (spatial hash). Simple, very fast to build
//!   and ideal for the repeated small-radius "which links are within `u_m` of
//!   me?" queries the map matcher issues every second.
//! * [`RTree`] — a bulk-loaded STR (Sort-Tile-Recursive) R-tree with range and
//!   (k-)nearest-neighbour queries. Used for larger maps and for the
//!   location-service queries (range, nearest taxi).
//! * [`MovingIndex`] — a keyed grid index whose entries can be moved and
//!   removed after insertion; the location service maintains one per shard to
//!   keep its range/nearest queries index-pruned while objects move.
//! * [`SpatialIndex`] — the common query trait, so the map matcher and the
//!   location service are index-agnostic (and the benchmarks can compare the
//!   implementations).
//!
//! Entries are `(Aabb, T)` pairs; the caller decides what the payload `T` is
//! (a link id, an object id, …) and how precise the final distance filter must
//! be. Both indexes are conservative: a query returns every entry whose
//! bounding box satisfies the predicate, never fewer.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cells;
pub mod grid;
pub mod moving;
pub mod rtree;

pub use cells::SeenScratch;
pub use grid::GridIndex;
pub use moving::MovingIndex;
pub use rtree::RTree;

use mbdr_geo::{Aabb, Point};

/// An entry stored in a spatial index: a bounding box plus an opaque payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry<T> {
    /// Bounding box of the indexed geometry.
    pub bbox: Aabb,
    /// Caller-defined payload (e.g. a link id).
    pub item: T,
}

impl<T> Entry<T> {
    /// Creates an entry.
    pub fn new(bbox: Aabb, item: T) -> Self {
        Entry { bbox, item }
    }
}

/// A neighbour returned by a nearest-neighbour query.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor<'a, T> {
    /// Distance from the query point to the entry's bounding box (lower bound
    /// on the distance to the exact geometry), metres.
    pub distance: f64,
    /// The matching entry.
    pub entry: &'a Entry<T>,
}

/// Common interface of the spatial indexes in this crate.
pub trait SpatialIndex<T> {
    /// Number of entries in the index.
    fn len(&self) -> usize;

    /// Returns `true` if the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entries whose bounding box intersects `query`.
    fn query_rect<'a>(&'a self, query: &Aabb) -> Vec<&'a Entry<T>>;

    /// All entries whose bounding box comes within `radius` metres of `p`.
    fn query_within<'a>(&'a self, p: &Point, radius: f64) -> Vec<&'a Entry<T>> {
        self.query_rect(&Aabb::around(*p, radius))
            .into_iter()
            .filter(|e| e.bbox.distance_to_point(p) <= radius)
            .collect()
    }

    /// The `k` entries whose bounding boxes are nearest to `p`, ordered by
    /// ascending distance.
    fn nearest<'a>(&'a self, p: &Point, k: usize) -> Vec<Neighbor<'a, T>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_holds_payload() {
        let e = Entry::new(Aabb::around(Point::new(1.0, 2.0), 5.0), 42u32);
        assert_eq!(e.item, 42);
        assert!(e.bbox.contains(&Point::new(1.0, 2.0)));
    }
}
