//! A keyed, incrementally-updatable grid index for moving objects.
//!
//! [`GridIndex`](crate::GridIndex) and [`RTree`](crate::RTree) are build-once
//! structures: perfect for static map geometry, useless for a store whose
//! entries (tracked objects) move on every update. [`MovingIndex`] fills that
//! gap: the same uniform-grid cell structure, but entries are addressed by a
//! caller-chosen key and can be inserted, moved and removed in O(cells per
//! entry) — the operation the location service performs on every ingested
//! position update.
//!
//! Queries go through the common [`SpatialIndex`] trait, so the service stays
//! index-agnostic and the equivalence property tests cover all three
//! implementations with the same brute-force oracle.

use crate::{Entry, Neighbor, SpatialIndex};
use mbdr_geo::{Aabb, Point};
use std::collections::HashMap;
use std::hash::Hash;

/// A uniform-grid spatial index whose entries are addressed by key and may be
/// moved or removed after insertion.
///
/// Keys must be `Ord` so query results can be returned in a deterministic
/// order regardless of hash-map iteration order.
#[derive(Debug, Clone)]
pub struct MovingIndex<K> {
    cell_size: f64,
    /// Key → current entry (`entry.item` is the key itself).
    items: HashMap<K, Entry<K>>,
    /// Cell coordinates → keys of entries overlapping the cell.
    cells: HashMap<(i64, i64), Vec<K>>,
    /// Union of every bbox ever inserted (never shrinks on removal); used as
    /// a conservative termination bound for nearest-neighbour searches.
    bounds: Option<Aabb>,
}

impl<K: Copy + Eq + Hash + Ord> MovingIndex<K> {
    /// Creates an empty index with the given cell size in metres.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive.
    pub fn new(cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "grid cell size must be positive");
        MovingIndex { cell_size, items: HashMap::new(), cells: HashMap::new(), bounds: None }
    }

    /// The configured cell size in metres.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Returns `true` if `key` currently has an entry.
    pub fn contains_key(&self, key: &K) -> bool {
        self.items.contains_key(key)
    }

    /// The bounding box currently stored for `key`, if any.
    pub fn get(&self, key: &K) -> Option<&Aabb> {
        self.items.get(key).map(|e| &e.bbox)
    }

    /// A box guaranteed to contain every current entry (it may be larger:
    /// removals do not shrink it). `None` while nothing was ever inserted.
    pub fn bounds(&self) -> Option<Aabb> {
        self.bounds
    }

    /// Number of occupied grid cells (diagnostic; useful in benchmarks).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Inserts `key` with `bbox`, replacing (and unregistering) any previous
    /// placement of the same key. Returns `true` if the key was already
    /// present.
    pub fn insert(&mut self, key: K, bbox: Aabb) -> bool {
        let moved = self.remove(&key);
        for cell in cell_range(&bbox, self.cell_size) {
            self.cells.entry(cell).or_default().push(key);
        }
        self.items.insert(key, Entry::new(bbox, key));
        self.bounds = Some(match self.bounds {
            Some(b) => b.union(&bbox),
            None => bbox,
        });
        moved
    }

    /// Removes `key` from the index. Returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(old) = self.items.remove(key) else {
            return false;
        };
        for cell in cell_range(&old.bbox, self.cell_size) {
            if let Some(keys) = self.cells.get_mut(&cell) {
                if let Some(pos) = keys.iter().position(|k| k == key) {
                    keys.swap_remove(pos);
                }
                if keys.is_empty() {
                    self.cells.remove(&cell);
                }
            }
        }
        true
    }

    /// Writes the keys of entries registered in cells overlapping `query`
    /// into `out` (cleared first), deduplicated via an in-place unstable sort
    /// — ascending order, deterministic regardless of hash-map iteration.
    ///
    /// The buffer is the *caller's* scratch: a reader that reuses one buffer
    /// across queries performs zero heap allocations per query in steady
    /// state (the sort and dedup are in-place; `extend_from_slice` only
    /// grows the buffer until it reaches the high-water candidate count).
    ///
    /// The visited cell range is clamped to the occupied bounds so an
    /// oversized query box (e.g. a nearest-neighbour ring that grew to the
    /// whole extent) costs cells-in-use, not cells-in-query.
    pub fn query_keys_into(&self, query: &Aabb, out: &mut Vec<K>) {
        out.clear();
        let Some(bounds) = self.bounds else {
            return;
        };
        if !bounds.intersects(query) {
            return;
        }
        let clamped = Aabb {
            min: Point::new(query.min.x.max(bounds.min.x), query.min.y.max(bounds.min.y)),
            max: Point::new(query.max.x.min(bounds.max.x), query.max.y.min(bounds.max.y)),
        };
        for cell in cell_range(&clamped, self.cell_size) {
            if let Some(keys) = self.cells.get(&cell) {
                out.extend_from_slice(keys);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Calls `f` for every entry whose bounding box intersects `query`, in
    /// ascending key order, using `keys_scratch` as the candidate buffer —
    /// the allocation-free form of [`SpatialIndex::query_rect`] the location
    /// service's query paths are built on.
    pub fn for_each_in_rect(
        &self,
        query: &Aabb,
        keys_scratch: &mut Vec<K>,
        mut f: impl FnMut(&Entry<K>),
    ) {
        self.query_keys_into(query, keys_scratch);
        for key in keys_scratch.iter() {
            if let Some(entry) = self.items.get(key) {
                if entry.bbox.intersects(query) {
                    f(entry);
                }
            }
        }
    }

    /// A radius from `p` guaranteed to cover every entry (derived from the
    /// monotone `bounds` box, so O(1) rather than a scan). Used to terminate
    /// expanding-ring nearest-neighbour searches, both the index's own and
    /// the location service's cross-shard one.
    pub fn extent_radius(&self, p: &Point) -> f64 {
        match self.bounds {
            Some(b) => {
                let dx = (p.x - b.min.x).abs().max((p.x - b.max.x).abs());
                let dy = (p.y - b.min.y).abs().max((p.y - b.max.y).abs());
                dx.hypot(dy) + self.cell_size
            }
            None => self.cell_size,
        }
    }
}

/// The inclusive range of grid cells a box overlaps, as an iterator.
fn cell_range(bbox: &Aabb, cell_size: f64) -> impl Iterator<Item = (i64, i64)> {
    let cx0 = (bbox.min.x / cell_size).floor() as i64;
    let cy0 = (bbox.min.y / cell_size).floor() as i64;
    let cx1 = (bbox.max.x / cell_size).floor() as i64;
    let cy1 = (bbox.max.y / cell_size).floor() as i64;
    (cx0..=cx1).flat_map(move |cx| (cy0..=cy1).map(move |cy| (cx, cy)))
}

impl<K: Copy + Eq + Hash + Ord> SpatialIndex<K> for MovingIndex<K> {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn query_rect<'a>(&'a self, query: &Aabb) -> Vec<&'a Entry<K>> {
        let mut keys = Vec::new();
        self.query_keys_into(query, &mut keys);
        keys.into_iter()
            .filter_map(|k| self.items.get(&k))
            .filter(|e| e.bbox.intersects(query))
            .collect()
    }

    fn nearest<'a>(&'a self, p: &Point, k: usize) -> Vec<Neighbor<'a, K>> {
        if self.items.is_empty() || k == 0 {
            return Vec::new();
        }
        let extent = self.extent_radius(p);
        let mut radius = self.cell_size;
        loop {
            // Entries whose bbox does not intersect the square of half-width
            // `radius` are strictly farther than `radius` from `p`, so once
            // the k-th candidate distance is within `radius` the result is
            // exact (no diagonal-cell corrections needed).
            let mut found: Vec<Neighbor<'a, K>> = self
                .query_rect(&Aabb::around(*p, radius))
                .into_iter()
                .map(|e| Neighbor { distance: e.bbox.distance_to_point(p), entry: e })
                .collect();
            // Unstable sort: the comparator is a total order (distance with
            // the unique key as tiebreak), so the result is deterministic
            // and no stable-sort temp buffer is allocated.
            found.sort_unstable_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .expect("finite distances")
                    .then(a.entry.item.cmp(&b.entry.item))
            });
            let settled = found.len() >= k && found[k - 1].distance <= radius;
            if settled || radius >= extent {
                found.truncate(k);
                return found;
            }
            let needed = if found.len() >= k { found[k - 1].distance } else { radius * 2.0 };
            radius = (radius * 2.0).max(needed).min(extent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> MovingIndex<u32> {
        let mut idx = MovingIndex::new(10.0);
        idx.insert(1, Aabb::around(Point::new(5.0, 5.0), 1.0));
        idx.insert(2, Aabb::around(Point::new(25.0, 5.0), 1.0));
        idx.insert(3, Aabb::around(Point::new(105.0, 105.0), 1.0));
        idx
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_rejected() {
        let _ = MovingIndex::<u32>::new(0.0);
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut idx = populated();
        assert_eq!(idx.len(), 3);
        assert!(idx.contains_key(&2));
        let hits = idx.query_rect(&Aabb::around(Point::new(5.0, 5.0), 3.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].item, 1);
        assert!(idx.remove(&1));
        assert!(!idx.remove(&1), "double remove is a no-op");
        assert!(idx.query_rect(&Aabb::around(Point::new(5.0, 5.0), 3.0)).is_empty());
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn reinsert_moves_the_entry() {
        let mut idx = populated();
        assert!(idx.insert(1, Aabb::around(Point::new(205.0, 5.0), 1.0)), "key existed");
        assert_eq!(idx.len(), 3, "a move does not grow the index");
        assert!(idx.query_rect(&Aabb::around(Point::new(5.0, 5.0), 3.0)).is_empty());
        let hits = idx.query_rect(&Aabb::around(Point::new(205.0, 5.0), 3.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].item, 1);
        assert_eq!(idx.get(&1).unwrap().center(), Point::new(205.0, 5.0));
    }

    #[test]
    fn large_entry_spans_multiple_cells_and_is_cleaned_up() {
        let mut idx = MovingIndex::new(10.0);
        idx.insert(9, Aabb::new(Point::new(0.0, 0.0), Point::new(50.0, 50.0)));
        assert!(idx.occupied_cells() >= 25);
        assert!(idx.query_rect(&Aabb::around(Point::new(49.0, 49.0), 1.0)).len() == 1);
        idx.remove(&9);
        assert_eq!(idx.occupied_cells(), 0, "empty cell vectors are dropped");
    }

    #[test]
    fn nearest_orders_by_distance_then_key() {
        let mut idx = populated();
        // Two entries at the same distance from the query point.
        idx.insert(4, Aabb::around(Point::new(-15.0, 5.0), 1.0));
        idx.insert(5, Aabb::around(Point::new(25.0, 5.0), 1.0)); // same box as 2
        let nn = idx.nearest(&Point::new(5.0, 5.0), 4);
        assert_eq!(nn.len(), 4);
        assert!(nn.windows(2).all(|w| w[0].distance <= w[1].distance));
        let items: Vec<u32> = nn.iter().map(|n| n.entry.item).collect();
        assert_eq!(items[0], 1);
        // 2 and 5 share a distance: ascending key order breaks the tie.
        let pos2 = items.iter().position(|&i| i == 2).unwrap();
        let pos5 = items.iter().position(|&i| i == 5).unwrap();
        assert!(pos2 < pos5);
    }

    #[test]
    fn nearest_reaches_far_entries_and_empty_index_is_empty() {
        let idx = populated();
        let nn = idx.nearest(&Point::ORIGIN, 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn.last().unwrap().entry.item, 3);
        let empty: MovingIndex<u32> = MovingIndex::new(10.0);
        assert!(empty.nearest(&Point::ORIGIN, 2).is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn scratch_buffer_query_agrees_with_the_allocating_one() {
        let mut idx = populated();
        idx.insert(4, Aabb::new(Point::new(0.0, 0.0), Point::new(120.0, 120.0))); // spans many cells
        let mut scratch = vec![99u32; 7]; // stale contents must not leak through
        for query in [
            Aabb::around(Point::new(5.0, 5.0), 3.0),
            Aabb::around(Point::new(60.0, 60.0), 80.0),
            Aabb::around(Point::new(-500.0, -500.0), 1.0),
        ] {
            let owned: Vec<u32> = idx.query_rect(&query).iter().map(|e| e.item).collect();
            let mut via_scratch = Vec::new();
            idx.for_each_in_rect(&query, &mut scratch, |e| via_scratch.push(e.item));
            assert_eq!(via_scratch, owned, "{query:?}");
        }
    }

    #[test]
    fn bounds_track_insertions() {
        let mut idx = MovingIndex::new(10.0);
        assert!(idx.bounds().is_none());
        idx.insert(1, Aabb::around(Point::new(0.0, 0.0), 1.0));
        idx.insert(2, Aabb::around(Point::new(100.0, -50.0), 1.0));
        let b = idx.bounds().unwrap();
        assert!(b.contains(&Point::new(0.0, 0.0)));
        assert!(b.contains(&Point::new(100.0, -50.0)));
    }
}
