//! A keyed, incrementally-updatable grid index for moving objects.
//!
//! [`GridIndex`](crate::GridIndex) and [`RTree`](crate::RTree) are build-once
//! structures: perfect for static map geometry, useless for a store whose
//! entries (tracked objects) move on every update. [`MovingIndex`] fills that
//! gap: the same uniform-grid cell structure, but entries are addressed by a
//! caller-chosen key and can be inserted, moved and removed in O(cells per
//! entry) — the operation the location service performs on every ingested
//! position update.
//!
//! ## Storage layout
//!
//! The index is built for the million-object regime, where the former
//! `HashMap<(i64, i64), Vec<K>>` layout (one heap-allocated `Vec` per occupied
//! cell, SipHash per cell probe, and a `sort_unstable + dedup` pass per query)
//! dominated the query profile. Instead:
//!
//! * entries live in a dense arena (`entries[dense_id]`), addressed by a
//!   small integer id; the key → id map is hashed only on mutation;
//! * cell membership lives in one flat slab of `(key, dense_id)` slots,
//!   carved into power-of-two-capacity segments — one contiguous segment per
//!   occupied cell, found through an open-addressed `CellTable`;
//! * every entry records its placements (`cell`, position *within* the
//!   cell's segment), so removal is a swap-remove plus a placement patch —
//!   O(cells per entry), independent of how crowded the cells are;
//! * queries walk contiguous segments and deduplicate with a
//!   generation-stamped [`SeenScratch`] in O(candidates), instead of sorting
//!   the candidate list on every query.
//!
//! All mutation paths reuse freed segments, dense ids and placement buffers,
//! so the steady state (objects moving within a warm cell population) touches
//! the allocator zero times — the property the `hotpath` benchmark gate pins.
//!
//! Queries go through the common [`SpatialIndex`] trait, so the service stays
//! index-agnostic and the equivalence property tests cover all three
//! implementations with the same brute-force oracle.

use crate::cells::CellTable;
use crate::{Entry, Neighbor, SeenScratch, SpatialIndex};
use mbdr_geo::{Aabb, Point};
use std::collections::HashMap;
use std::hash::Hash;

/// Capacity of the smallest segment size class (class `c` holds
/// `MIN_SEG_CAP << c` slots).
const MIN_SEG_CAP: u32 = 4;

/// Number of segment size classes: `4 << 27` slots (half a billion) in the
/// largest — far beyond any single cell this index will see.
const NUM_CLASSES: usize = 28;

/// A cell's slice of the slab: `cap = MIN_SEG_CAP << class` slots starting at
/// `start`, the first `len` of them live.
#[derive(Debug, Clone, Copy, Default)]
struct Segment {
    start: u32,
    len: u32,
    class: u8,
}

#[inline]
fn seg_cap(class: u8) -> u32 {
    MIN_SEG_CAP << class
}

/// One slab slot: the entry's key (so ordered queries need no indirection)
/// plus its dense id (what the seen-mask and the entry arena are indexed by).
#[derive(Debug, Clone, Copy)]
struct ArenaSlot<K> {
    key: K,
    dense: u32,
}

/// One cell an entry is registered in, with its position *relative to the
/// cell's segment start* — stable across both table rehashes (the coordinate
/// is stored, not a table slot) and segment grows (relative, not absolute).
#[derive(Debug, Clone, Copy)]
struct Placement {
    cell: (i64, i64),
    pos: u32,
}

/// The flat slot slab all cell segments are carved from, with one free list
/// per size class so emptied and outgrown segments are recycled instead of
/// leaking or reallocating.
#[derive(Debug, Clone)]
struct Slab<K> {
    data: Vec<ArenaSlot<K>>,
    free: [Vec<u32>; NUM_CLASSES],
}

impl<K: Copy> Slab<K> {
    fn new() -> Self {
        Slab { data: Vec::new(), free: std::array::from_fn(|_| Vec::new()) }
    }

    /// A segment of the given class: a recycled one if available, else fresh
    /// slab tail (filled with `filler` — callers overwrite the live prefix).
    fn alloc(&mut self, class: u8, filler: ArenaSlot<K>) -> u32 {
        if let Some(start) = self.free[class as usize].pop() {
            return start;
        }
        let start = self.data.len() as u32;
        self.data.resize(self.data.len() + seg_cap(class) as usize, filler);
        start
    }

    fn release(&mut self, start: u32, class: u8) {
        self.free[class as usize].push(start);
    }
}

/// A uniform-grid spatial index whose entries are addressed by key and may be
/// moved or removed after insertion, stored cache-consciously (dense entry
/// arena, flat per-cell segments, open-addressed cell table — see the module
/// docs).
///
/// Keys must be `Ord` so query results can be returned in a deterministic
/// order regardless of hash order.
#[derive(Debug, Clone)]
pub struct MovingIndex<K> {
    cell_size: f64,
    /// Key → dense id. Hashed on mutation and point lookup only; queries
    /// never touch it.
    items: HashMap<K, u32>,
    /// Dense id → entry. Freed ids keep their stale slot (unreachable: no
    /// cell references it) and are recycled through `free_ids`.
    entries: Vec<Entry<K>>,
    /// Dense id → the cells the entry is registered in. The inner buffers
    /// are retained across removal/re-insert so a moving entry allocates
    /// nothing in steady state.
    placements: Vec<Vec<Placement>>,
    free_ids: Vec<u32>,
    /// Cell coordinate → its segment of `slab`.
    table: CellTable<Segment>,
    slab: Slab<K>,
    /// Union of every bbox ever inserted (never shrinks on removal); used as
    /// a conservative termination bound for nearest-neighbour searches.
    bounds: Option<Aabb>,
}

impl<K: Copy + Eq + Hash + Ord> MovingIndex<K> {
    /// Creates an empty index with the given cell size in metres.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive.
    pub fn new(cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "grid cell size must be positive");
        MovingIndex {
            cell_size,
            items: HashMap::new(),
            entries: Vec::new(),
            placements: Vec::new(),
            free_ids: Vec::new(),
            table: CellTable::new(),
            slab: Slab::new(),
            bounds: None,
        }
    }

    /// The configured cell size in metres.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Returns `true` if `key` currently has an entry.
    pub fn contains_key(&self, key: &K) -> bool {
        self.items.contains_key(key)
    }

    /// The bounding box currently stored for `key`, if any.
    pub fn get(&self, key: &K) -> Option<&Aabb> {
        self.items.get(key).map(|&dense| &self.entries[dense as usize].bbox)
    }

    /// A box guaranteed to contain every current entry (it may be larger:
    /// removals do not shrink it). `None` while nothing was ever inserted.
    pub fn bounds(&self) -> Option<Aabb> {
        self.bounds
    }

    /// Number of occupied grid cells (diagnostic; useful in benchmarks).
    pub fn occupied_cells(&self) -> usize {
        self.table.len()
    }

    /// Highest number of entries registered in any single cell — the direct
    /// observable of placement skew (a hotspot cell holds a large fraction of
    /// the shard). O(occupied cells); diagnostic, not a hot path.
    pub fn max_cell_occupancy(&self) -> usize {
        self.table.iter().map(|(_, seg)| seg.len as usize).max().unwrap_or(0)
    }

    /// Inserts `key` with `bbox`, replacing (and unregistering) any previous
    /// placement of the same key. Returns `true` if the key was already
    /// present.
    pub fn insert(&mut self, key: K, bbox: Aabb) -> bool {
        let (dense, moved) = match self.items.get(&key).copied() {
            Some(dense) => {
                // A move: detach the old placements but keep the dense id
                // (and its placement buffer) — no hashing beyond the lookup,
                // no allocation.
                self.detach(dense);
                self.entries[dense as usize].bbox = bbox;
                (dense, true)
            }
            None => {
                let dense = match self.free_ids.pop() {
                    Some(id) => {
                        self.entries[id as usize] = Entry::new(bbox, key);
                        id
                    }
                    None => {
                        let id = self.entries.len() as u32;
                        self.entries.push(Entry::new(bbox, key));
                        self.placements.push(Vec::new());
                        id
                    }
                };
                self.items.insert(key, dense);
                (dense, false)
            }
        };
        for cell in cell_range(&bbox, self.cell_size) {
            self.register(dense, key, cell);
        }
        self.bounds = Some(match self.bounds {
            Some(b) => b.union(&bbox),
            None => bbox,
        });
        moved
    }

    /// Removes `key` from the index. Returns `true` if it was present.
    ///
    /// O(cells the entry spans), independent of cell crowding: each placement
    /// is a swap-remove at a recorded position, not a scan of the cell.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(dense) = self.items.remove(key) else {
            return false;
        };
        self.detach(dense);
        self.free_ids.push(dense);
        true
    }

    /// Unregisters every placement of `dense`, retaining its placement
    /// buffer's capacity for reuse.
    fn detach(&mut self, dense: u32) {
        let mut list = std::mem::take(&mut self.placements[dense as usize]);
        for p in list.drain(..) {
            self.unregister(p.cell, p.pos);
        }
        // Hand the (now empty) buffer back so the next insert reuses it.
        self.placements[dense as usize] = list;
    }

    /// Appends a slot for `dense` to `cell`'s segment, growing the segment a
    /// size class (copy + recycle) when full, and records the placement.
    fn register(&mut self, dense: u32, key: K, cell: (i64, i64)) {
        let slot = ArenaSlot { key, dense };
        let pos = match self.table.get(cell).copied() {
            Some(seg) if seg.len < seg_cap(seg.class) => {
                self.slab.data[(seg.start + seg.len) as usize] = slot;
                self.table.get_mut(cell).expect("cell just probed").len += 1;
                seg.len
            }
            Some(seg) => {
                // Segment full: move the cell to the next size class.
                // Placements store segment-relative positions, so the copy
                // invalidates nothing.
                let new_start = self.slab.alloc(seg.class + 1, slot);
                self.slab.data.copy_within(
                    seg.start as usize..(seg.start + seg.len) as usize,
                    new_start as usize,
                );
                self.slab.data[(new_start + seg.len) as usize] = slot;
                self.slab.release(seg.start, seg.class);
                *self.table.get_mut(cell).expect("cell just probed") =
                    Segment { start: new_start, len: seg.len + 1, class: seg.class + 1 };
                seg.len
            }
            None => {
                let start = self.slab.alloc(0, slot);
                self.slab.data[start as usize] = slot;
                self.table.insert(cell, Segment { start, len: 1, class: 0 });
                0
            }
        };
        self.placements[dense as usize].push(Placement { cell, pos });
    }

    /// Swap-removes the slot at `pos` of `cell`'s segment, patching the
    /// placement record of whichever entry's slot was swapped into the hole.
    fn unregister(&mut self, cell: (i64, i64), pos: u32) {
        let seg = *self.table.get(cell).expect("placement refers to an occupied cell");
        let last = seg.len - 1;
        if pos != last {
            let tail = self.slab.data[(seg.start + last) as usize];
            self.slab.data[(seg.start + pos) as usize] = tail;
            // An entry appears at most once per cell, so the swapped slot
            // always belongs to a *different* entry whose placement list is
            // in place (not the one being detached).
            let list = &mut self.placements[tail.dense as usize];
            let record =
                list.iter_mut().find(|p| p.cell == cell).expect("swapped entry records this cell");
            record.pos = pos;
        }
        if last == 0 {
            self.table.remove(cell);
            self.slab.release(seg.start, seg.class);
        } else {
            self.table.get_mut(cell).expect("cell just probed").len = last;
        }
    }

    /// The query box clamped to the occupied bounds, so an oversized query
    /// box (e.g. a nearest-neighbour ring that grew to the whole extent)
    /// costs cells-in-use, not cells-in-query. `None` if nothing can match.
    fn clamp(&self, query: &Aabb) -> Option<Aabb> {
        let bounds = self.bounds?;
        if !bounds.intersects(query) {
            return None;
        }
        Some(Aabb {
            min: Point::new(query.min.x.max(bounds.min.x), query.min.y.max(bounds.min.y)),
            max: Point::new(query.max.x.min(bounds.max.x), query.max.y.min(bounds.max.y)),
        })
    }

    /// Writes the keys of entries registered in cells overlapping `query`
    /// into `out` (cleared first), deduplicated and in ascending order.
    ///
    /// Dedup is O(candidates) via the generation-stamped seen mask — an
    /// entry spanning many visited cells is accepted once and skipped on
    /// every later visit — and only the *unique* keys are sorted. Both
    /// buffers are the caller's scratch: a reader that reuses them across
    /// queries performs zero heap allocations per query in steady state.
    pub fn query_keys_into(&self, query: &Aabb, seen: &mut SeenScratch, out: &mut Vec<K>) {
        out.clear();
        let Some(clamped) = self.clamp(query) else {
            return;
        };
        seen.begin(self.entries.len());
        for cell in cell_range(&clamped, self.cell_size) {
            let Some(seg) = self.table.get(cell) else {
                continue;
            };
            for slot in &self.slab.data[seg.start as usize..(seg.start + seg.len) as usize] {
                if seen.first_visit(slot.dense) {
                    out.push(slot.key);
                }
            }
        }
        out.sort_unstable();
    }

    /// Calls `f` for every entry whose bounding box intersects `query`, in
    /// **unspecified order**, allocation-free — the form the location
    /// service's batch query kernels are built on (they impose their own
    /// deterministic order on the final results, so paying for an ordered
    /// candidate walk here would be waste).
    pub fn for_each_in_rect_unordered<'a>(
        &'a self,
        query: &Aabb,
        seen: &mut SeenScratch,
        mut f: impl FnMut(&'a Entry<K>),
    ) {
        let Some(clamped) = self.clamp(query) else {
            return;
        };
        seen.begin(self.entries.len());
        for cell in cell_range(&clamped, self.cell_size) {
            let Some(seg) = self.table.get(cell) else {
                continue;
            };
            for slot in &self.slab.data[seg.start as usize..(seg.start + seg.len) as usize] {
                if seen.first_visit(slot.dense) {
                    let entry = &self.entries[slot.dense as usize];
                    if entry.bbox.intersects(query) {
                        f(entry);
                    }
                }
            }
        }
    }

    /// A radius from `p` guaranteed to cover every entry (derived from the
    /// monotone `bounds` box, so O(1) rather than a scan). Used to terminate
    /// expanding-ring nearest-neighbour searches, both the index's own and
    /// the location service's cross-shard one.
    pub fn extent_radius(&self, p: &Point) -> f64 {
        match self.bounds {
            Some(b) => {
                let dx = (p.x - b.min.x).abs().max((p.x - b.max.x).abs());
                let dy = (p.y - b.min.y).abs().max((p.y - b.max.y).abs());
                dx.hypot(dy) + self.cell_size
            }
            None => self.cell_size,
        }
    }
}

/// The inclusive range of grid cells a box overlaps, as an iterator.
fn cell_range(bbox: &Aabb, cell_size: f64) -> impl Iterator<Item = (i64, i64)> {
    let cx0 = (bbox.min.x / cell_size).floor() as i64;
    let cy0 = (bbox.min.y / cell_size).floor() as i64;
    let cx1 = (bbox.max.x / cell_size).floor() as i64;
    let cy1 = (bbox.max.y / cell_size).floor() as i64;
    (cx0..=cx1).flat_map(move |cx| (cy0..=cy1).map(move |cy| (cx, cy)))
}

impl<K: Copy + Eq + Hash + Ord> SpatialIndex<K> for MovingIndex<K> {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn query_rect<'a>(&'a self, query: &Aabb) -> Vec<&'a Entry<K>> {
        let mut seen = SeenScratch::new();
        let mut hits: Vec<&'a Entry<K>> = Vec::new();
        self.for_each_in_rect_unordered(query, &mut seen, |e| hits.push(e));
        // The trait form promises a deterministic (ascending-key) order.
        hits.sort_unstable_by_key(|a| a.item);
        hits
    }

    fn nearest<'a>(&'a self, p: &Point, k: usize) -> Vec<Neighbor<'a, K>> {
        if self.items.is_empty() || k == 0 {
            return Vec::new();
        }
        let extent = self.extent_radius(p);
        let mut radius = self.cell_size;
        loop {
            // Entries whose bbox does not intersect the square of half-width
            // `radius` are strictly farther than `radius` from `p`, so once
            // the k-th candidate distance is within `radius` the result is
            // exact (no diagonal-cell corrections needed).
            let mut found: Vec<Neighbor<'a, K>> = self
                .query_rect(&Aabb::around(*p, radius))
                .into_iter()
                .map(|e| Neighbor { distance: e.bbox.distance_to_point(p), entry: e })
                .collect();
            // Unstable sort: the comparator is a total order (distance with
            // the unique key as tiebreak), so the result is deterministic
            // and no stable-sort temp buffer is allocated.
            found.sort_unstable_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .expect("finite distances")
                    .then(a.entry.item.cmp(&b.entry.item))
            });
            let settled = found.len() >= k && found[k - 1].distance <= radius;
            if settled || radius >= extent {
                found.truncate(k);
                return found;
            }
            let needed = if found.len() >= k { found[k - 1].distance } else { radius * 2.0 };
            radius = (radius * 2.0).max(needed).min(extent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> MovingIndex<u32> {
        let mut idx = MovingIndex::new(10.0);
        idx.insert(1, Aabb::around(Point::new(5.0, 5.0), 1.0));
        idx.insert(2, Aabb::around(Point::new(25.0, 5.0), 1.0));
        idx.insert(3, Aabb::around(Point::new(105.0, 105.0), 1.0));
        idx
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_rejected() {
        let _ = MovingIndex::<u32>::new(0.0);
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut idx = populated();
        assert_eq!(idx.len(), 3);
        assert!(idx.contains_key(&2));
        let hits = idx.query_rect(&Aabb::around(Point::new(5.0, 5.0), 3.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].item, 1);
        assert!(idx.remove(&1));
        assert!(!idx.remove(&1), "double remove is a no-op");
        assert!(idx.query_rect(&Aabb::around(Point::new(5.0, 5.0), 3.0)).is_empty());
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn reinsert_moves_the_entry() {
        let mut idx = populated();
        assert!(idx.insert(1, Aabb::around(Point::new(205.0, 5.0), 1.0)), "key existed");
        assert_eq!(idx.len(), 3, "a move does not grow the index");
        assert!(idx.query_rect(&Aabb::around(Point::new(5.0, 5.0), 3.0)).is_empty());
        let hits = idx.query_rect(&Aabb::around(Point::new(205.0, 5.0), 3.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].item, 1);
        assert_eq!(idx.get(&1).unwrap().center(), Point::new(205.0, 5.0));
    }

    #[test]
    fn large_entry_spans_multiple_cells_and_is_cleaned_up() {
        let mut idx = MovingIndex::new(10.0);
        idx.insert(9, Aabb::new(Point::new(0.0, 0.0), Point::new(50.0, 50.0)));
        assert!(idx.occupied_cells() >= 25);
        assert!(idx.query_rect(&Aabb::around(Point::new(49.0, 49.0), 1.0)).len() == 1);
        idx.remove(&9);
        assert_eq!(idx.occupied_cells(), 0, "emptied cells are released");
        assert_eq!(idx.max_cell_occupancy(), 0);
    }

    #[test]
    fn crowded_cell_grows_segments_and_removal_patches_placements() {
        let mut idx = MovingIndex::new(100.0);
        // 64 entries in the same cell: the segment grows through several
        // size classes.
        for key in 0..64u32 {
            idx.insert(key, Aabb::around(Point::new(50.0, 50.0), 1.0));
        }
        assert_eq!(idx.occupied_cells(), 1);
        assert_eq!(idx.max_cell_occupancy(), 64);
        // Remove from the middle: each removal swap-removes a slot, which
        // must patch the swapped entry's placement record — verified because
        // later removals (and queries) still find everything.
        for key in (0..64u32).step_by(3) {
            assert!(idx.remove(&key));
        }
        let query = Aabb::around(Point::new(50.0, 50.0), 5.0);
        let left: Vec<u32> = idx.query_rect(&query).iter().map(|e| e.item).collect();
        let expect: Vec<u32> = (0..64).filter(|k| k % 3 != 0).collect();
        assert_eq!(left, expect);
        for key in expect {
            assert!(idx.remove(&key));
        }
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.occupied_cells(), 0);
    }

    #[test]
    fn steady_state_churn_reuses_segments_ids_and_placements() {
        let mut idx = MovingIndex::new(10.0);
        for key in 0..32u32 {
            idx.insert(key, Aabb::around(Point::new(key as f64 * 7.0, 0.0), 3.0));
        }
        // Warm up full move cycles (both transition directions) so every
        // size class / free list / placement buffer reaches its high-water
        // mark…
        for round in 0..4 {
            let phase = round % 2;
            for key in 0..32u32 {
                let x = key as f64 * 7.0 + phase as f64 * 11.0;
                idx.insert(key, Aabb::around(Point::new(x, phase as f64 * 11.0), 3.0));
            }
        }
        let slab_len = idx.slab.data.len();
        let entries_len = idx.entries.len();
        // …then keep cycling through the same positions: the arenas must not
        // grow (segments, ids and placement buffers are all recycled).
        for round in 0..50 {
            let phase = round % 2;
            for key in 0..32u32 {
                let x = key as f64 * 7.0 + phase as f64 * 11.0;
                idx.insert(key, Aabb::around(Point::new(x, phase as f64 * 11.0), 3.0));
            }
        }
        assert_eq!(idx.slab.data.len(), slab_len, "steady churn must not grow the slab");
        assert_eq!(idx.entries.len(), entries_len, "dense ids are recycled");
        assert_eq!(idx.len(), 32);
    }

    #[test]
    fn nearest_orders_by_distance_then_key() {
        let mut idx = populated();
        // Two entries at the same distance from the query point.
        idx.insert(4, Aabb::around(Point::new(-15.0, 5.0), 1.0));
        idx.insert(5, Aabb::around(Point::new(25.0, 5.0), 1.0)); // same box as 2
        let nn = idx.nearest(&Point::new(5.0, 5.0), 4);
        assert_eq!(nn.len(), 4);
        assert!(nn.windows(2).all(|w| w[0].distance <= w[1].distance));
        let items: Vec<u32> = nn.iter().map(|n| n.entry.item).collect();
        assert_eq!(items[0], 1);
        // 2 and 5 share a distance: ascending key order breaks the tie.
        let pos2 = items.iter().position(|&i| i == 2).unwrap();
        let pos5 = items.iter().position(|&i| i == 5).unwrap();
        assert!(pos2 < pos5);
    }

    #[test]
    fn nearest_reaches_far_entries_and_empty_index_is_empty() {
        let idx = populated();
        let nn = idx.nearest(&Point::ORIGIN, 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn.last().unwrap().entry.item, 3);
        let empty: MovingIndex<u32> = MovingIndex::new(10.0);
        assert!(empty.nearest(&Point::ORIGIN, 2).is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn scratch_buffer_query_agrees_with_the_allocating_one() {
        let mut idx = populated();
        idx.insert(4, Aabb::new(Point::new(0.0, 0.0), Point::new(120.0, 120.0))); // spans many cells
        let mut seen = SeenScratch::new();
        for query in [
            Aabb::around(Point::new(5.0, 5.0), 3.0),
            Aabb::around(Point::new(60.0, 60.0), 80.0),
            Aabb::around(Point::new(-500.0, -500.0), 1.0),
        ] {
            let owned: Vec<u32> = idx.query_rect(&query).iter().map(|e| e.item).collect();
            let mut via_scratch = Vec::new();
            idx.for_each_in_rect_unordered(&query, &mut seen, |e| via_scratch.push(e.item));
            via_scratch.sort_unstable();
            assert_eq!(via_scratch, owned, "{query:?}");
        }
    }

    #[test]
    fn query_keys_into_is_sorted_deduped_and_reuses_the_buffers() {
        let mut idx = MovingIndex::new(10.0);
        idx.insert(7, Aabb::new(Point::new(0.0, 0.0), Point::new(35.0, 35.0))); // many cells
        idx.insert(2, Aabb::around(Point::new(5.0, 5.0), 1.0));
        let mut seen = SeenScratch::new();
        let mut keys = vec![99u32; 5]; // stale contents must not leak through
        idx.query_keys_into(
            &Aabb::new(Point::new(0.0, 0.0), Point::new(30.0, 30.0)),
            &mut seen,
            &mut keys,
        );
        assert_eq!(keys, vec![2, 7], "deduped across cells, ascending");
        let (inspected, unique) = seen.dedup_counters();
        assert!(inspected > unique, "the multi-cell entry was inspected repeatedly");
        assert_eq!(unique, 2);
    }

    #[test]
    fn bounds_track_insertions() {
        let mut idx = MovingIndex::new(10.0);
        assert!(idx.bounds().is_none());
        idx.insert(1, Aabb::around(Point::new(0.0, 0.0), 1.0));
        idx.insert(2, Aabb::around(Point::new(100.0, -50.0), 1.0));
        let b = idx.bounds().unwrap();
        assert!(b.contains(&Point::new(0.0, 0.0)));
        assert!(b.contains(&Point::new(100.0, -50.0)));
    }
}
