//! Bulk-loaded STR (Sort-Tile-Recursive) R-tree.
//!
//! Road maps are static during a tracking session, so a packed, read-only
//! R-tree built once with the STR algorithm gives near-optimal node occupancy
//! without the complexity of dynamic insertion/splitting. Queries:
//!
//! * [`RTree::query_rect`] — all entries intersecting a rectangle,
//! * [`RTree::nearest`] — best-first k-nearest-neighbour search using a
//!   priority queue over node bounding-box distances.

use crate::{Entry, Neighbor, SpatialIndex};
use mbdr_geo::{Aabb, Point};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Maximum number of children per internal node / entries per leaf.
const NODE_CAPACITY: usize = 8;

#[derive(Debug, Clone)]
enum Node {
    /// Leaf node: indexes into the entry array.
    Leaf { bbox: Aabb, entries: Vec<u32> },
    /// Internal node: indexes into the node array.
    Internal { bbox: Aabb, children: Vec<u32> },
}

impl Node {
    fn bbox(&self) -> &Aabb {
        match self {
            Node::Leaf { bbox, .. } => bbox,
            Node::Internal { bbox, .. } => bbox,
        }
    }
}

/// A static, bulk-loaded R-tree over `(Aabb, T)` entries.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    entries: Vec<Entry<T>>,
    nodes: Vec<Node>,
    root: Option<u32>,
}

impl<T> RTree<T> {
    /// Builds an R-tree from `(bbox, item)` pairs using STR bulk loading.
    pub fn bulk_load<I>(items: I) -> Self
    where
        I: IntoIterator<Item = (Aabb, T)>,
    {
        let entries: Vec<Entry<T>> =
            items.into_iter().map(|(bbox, item)| Entry::new(bbox, item)).collect();
        let mut tree = RTree { entries, nodes: Vec::new(), root: None };
        if tree.entries.is_empty() {
            return tree;
        }
        // --- STR: sort by centre x, slice into vertical strips, sort each
        // strip by centre y, pack runs of NODE_CAPACITY into leaves. ---
        let mut order: Vec<u32> = (0..tree.entries.len() as u32).collect();
        order.sort_by(|&a, &b| {
            let ca = tree.entries[a as usize].bbox.center().x;
            let cb = tree.entries[b as usize].bbox.center().x;
            ca.partial_cmp(&cb).unwrap_or(Ordering::Equal)
        });
        let n = order.len();
        let leaf_count = n.div_ceil(NODE_CAPACITY);
        let strip_count = (leaf_count as f64).sqrt().ceil() as usize;
        let per_strip = n.div_ceil(strip_count);

        let mut leaf_ids: Vec<u32> = Vec::with_capacity(leaf_count);
        for strip in order.chunks(per_strip.max(1)) {
            let mut strip: Vec<u32> = strip.to_vec();
            strip.sort_by(|&a, &b| {
                let ca = tree.entries[a as usize].bbox.center().y;
                let cb = tree.entries[b as usize].bbox.center().y;
                ca.partial_cmp(&cb).unwrap_or(Ordering::Equal)
            });
            for chunk in strip.chunks(NODE_CAPACITY) {
                let bbox = chunk
                    .iter()
                    .map(|&i| tree.entries[i as usize].bbox)
                    .reduce(|a, b| a.union(&b))
                    .expect("chunk is non-empty");
                let id = tree.nodes.len() as u32;
                tree.nodes.push(Node::Leaf { bbox, entries: chunk.to_vec() });
                leaf_ids.push(id);
            }
        }

        // --- Build upper levels by packing groups of NODE_CAPACITY nodes. ---
        let mut level = leaf_ids;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(NODE_CAPACITY));
            for chunk in level.chunks(NODE_CAPACITY) {
                let bbox = chunk
                    .iter()
                    .map(|&i| *tree.nodes[i as usize].bbox())
                    .reduce(|a, b| a.union(&b))
                    .expect("chunk is non-empty");
                let id = tree.nodes.len() as u32;
                tree.nodes.push(Node::Internal { bbox, children: chunk.to_vec() });
                next.push(id);
            }
            level = next;
        }
        tree.root = level.first().copied();
        tree
    }

    /// The bounding box of the whole tree, or `None` when empty.
    pub fn bounding_box(&self) -> Option<Aabb> {
        self.root.map(|r| *self.nodes[r as usize].bbox())
    }

    /// Height of the tree (0 for an empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut h = 1;
        let mut node = &self.nodes[root as usize];
        while let Node::Internal { children, .. } = node {
            node = &self.nodes[children[0] as usize];
            h += 1;
        }
        h
    }

    /// Access to all entries in load order.
    pub fn entries(&self) -> &[Entry<T>] {
        &self.entries
    }

    fn collect_rect<'a>(&'a self, node_id: u32, query: &Aabb, out: &mut Vec<&'a Entry<T>>) {
        match &self.nodes[node_id as usize] {
            Node::Leaf { entries, .. } => {
                for &i in entries {
                    let e = &self.entries[i as usize];
                    if e.bbox.intersects(query) {
                        out.push(e);
                    }
                }
            }
            Node::Internal { children, .. } => {
                for &c in children {
                    if self.nodes[c as usize].bbox().intersects(query) {
                        self.collect_rect(c, query, out);
                    }
                }
            }
        }
    }
}

/// Priority-queue element for best-first nearest-neighbour search.
struct HeapItem {
    /// Negative distance so that `BinaryHeap` (a max-heap) pops the nearest.
    neg_distance: f64,
    kind: HeapKind,
}

enum HeapKind {
    Node(u32),
    Entry(u32),
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.neg_distance == other.neg_distance
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.neg_distance.partial_cmp(&other.neg_distance).unwrap_or(Ordering::Equal)
    }
}

impl<T> SpatialIndex<T> for RTree<T> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn query_rect<'a>(&'a self, query: &Aabb) -> Vec<&'a Entry<T>> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            if self.nodes[root as usize].bbox().intersects(query) {
                self.collect_rect(root, query, &mut out);
            }
        }
        out
    }

    fn nearest<'a>(&'a self, p: &Point, k: usize) -> Vec<Neighbor<'a, T>> {
        let mut result = Vec::new();
        let Some(root) = self.root else { return result };
        if k == 0 {
            return result;
        }
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            neg_distance: -self.nodes[root as usize].bbox().distance_to_point(p),
            kind: HeapKind::Node(root),
        });
        while let Some(item) = heap.pop() {
            match item.kind {
                HeapKind::Entry(i) => {
                    result.push(Neighbor {
                        distance: -item.neg_distance,
                        entry: &self.entries[i as usize],
                    });
                    if result.len() == k {
                        break;
                    }
                }
                HeapKind::Node(id) => match &self.nodes[id as usize] {
                    Node::Leaf { entries, .. } => {
                        for &i in entries {
                            heap.push(HeapItem {
                                neg_distance: -self.entries[i as usize].bbox.distance_to_point(p),
                                kind: HeapKind::Entry(i),
                            });
                        }
                    }
                    Node::Internal { children, .. } => {
                        for &c in children {
                            heap.push(HeapItem {
                                neg_distance: -self.nodes[c as usize].bbox().distance_to_point(p),
                                kind: HeapKind::Node(c),
                            });
                        }
                    }
                },
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize, spacing: f64) -> Vec<(Aabb, usize)> {
        let mut out = Vec::new();
        let mut id = 0usize;
        for i in 0..n {
            for j in 0..n {
                let p = Point::new(i as f64 * spacing, j as f64 * spacing);
                out.push((Aabb::from_point(p), id));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn empty_tree_behaves() {
        let t: RTree<u32> = RTree::bulk_load(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.bounding_box().is_none());
        assert!(t.query_rect(&Aabb::around(Point::ORIGIN, 10.0)).is_empty());
        assert!(t.nearest(&Point::ORIGIN, 3).is_empty());
    }

    #[test]
    fn single_entry_tree() {
        let t = RTree::bulk_load(vec![(Aabb::from_point(Point::new(5.0, 5.0)), 7u32)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        let nn = t.nearest(&Point::ORIGIN, 1);
        assert_eq!(nn[0].entry.item, 7);
        assert!((nn[0].distance - 50f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn query_rect_matches_brute_force_on_grid() {
        let items = grid_points(20, 10.0); // 400 points, 0..190 in each axis
        let t = RTree::bulk_load(items.clone());
        let query = Aabb::new(Point::new(35.0, 35.0), Point::new(75.0, 95.0));
        let mut expected: Vec<usize> =
            items.iter().filter(|(b, _)| b.intersects(&query)).map(|(_, id)| *id).collect();
        let mut got: Vec<usize> = t.query_rect(&query).iter().map(|e| e.item).collect();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(expected, got);
        assert!(!got.is_empty());
    }

    #[test]
    fn nearest_matches_brute_force_on_grid() {
        let items = grid_points(15, 7.0);
        let t = RTree::bulk_load(items.clone());
        let q = Point::new(33.0, 61.0);
        let mut brute: Vec<(f64, usize)> =
            items.iter().map(|(b, id)| (b.distance_to_point(&q), *id)).collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let nn = t.nearest(&q, 5);
        assert_eq!(nn.len(), 5);
        for (i, n) in nn.iter().enumerate() {
            assert!((n.distance - brute[i].0).abs() < 1e-9, "rank {i}");
        }
        // Result is sorted by distance.
        assert!(nn.windows(2).all(|w| w[0].distance <= w[1].distance));
    }

    #[test]
    fn nearest_with_k_larger_than_len_returns_all() {
        let items = grid_points(3, 5.0);
        let t = RTree::bulk_load(items);
        let nn = t.nearest(&Point::ORIGIN, 100);
        assert_eq!(nn.len(), 9);
    }

    #[test]
    fn tree_is_reasonably_balanced() {
        let items = grid_points(32, 3.0); // 1024 entries
        let t = RTree::bulk_load(items);
        // ceil(log_8(1024/8)) + 1 = 4 levels or fewer for a packed tree;
        // allow one extra level of slack for strip rounding.
        assert!(t.height() <= 5, "height {}", t.height());
        assert_eq!(t.len(), 1024);
    }

    #[test]
    fn bounding_box_covers_everything() {
        let items = grid_points(5, 13.0);
        let t = RTree::bulk_load(items);
        let bb = t.bounding_box().unwrap();
        assert!(bb.contains(&Point::new(0.0, 0.0)));
        assert!(bb.contains(&Point::new(52.0, 52.0)));
    }

    #[test]
    fn query_within_trait_default_filters_radius() {
        let items = vec![
            (Aabb::from_point(Point::new(0.0, 0.0)), 0u32),
            (Aabb::from_point(Point::new(30.0, 0.0)), 1u32),
            (Aabb::from_point(Point::new(100.0, 0.0)), 2u32),
        ];
        let t = RTree::bulk_load(items);
        let hits = t.query_within(&Point::new(0.0, 0.0), 50.0);
        let mut ids: Vec<u32> = hits.iter().map(|e| e.item).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }
}
