//! Uniform grid (spatial hash) index.
//!
//! The grid partitions the plane into square cells of a fixed size; every
//! entry is registered in all cells its bounding box overlaps. Queries then
//! only inspect the cells touched by the query region. With a cell size on the
//! order of the map-matching tolerance `u_m` (tens of metres) a candidate-link
//! query touches a handful of cells and a handful of links — constant time in
//! practice, independent of the map size.
//!
//! Cell membership is stored without per-cell heap boxes: an open-addressed
//! the crate-private `CellTable` maps the cell coordinate to a chain of slots in one flat
//! arena. Incremental inserts prepend to the chain in O(1); [`compact`]
//! (called automatically by [`bulk_load`]) rewrites the arena so every cell's
//! slots are contiguous and in insertion order — a CSR-style layout that
//! makes the per-query candidate walk a linear scan. Query dedup is a
//! generation-stamped [`SeenScratch`] pass (O(candidates)) instead of the
//! former per-query `sort_unstable + dedup` over the raw candidate list.
//!
//! [`compact`]: GridIndex::compact
//! [`bulk_load`]: GridIndex::bulk_load

use crate::cells::CellTable;
use crate::{Entry, Neighbor, SeenScratch, SpatialIndex};
use mbdr_geo::{Aabb, Point};

/// Chain terminator / "no slot" sentinel.
const NONE: u32 = u32::MAX;

/// A cell's candidate list: the head of its slot chain and its length.
#[derive(Debug, Clone, Copy, Default)]
struct CellList {
    head: u32,
    len: u32,
}

/// One arena slot: an entry index and the next slot of the same cell.
#[derive(Debug, Clone, Copy)]
struct ChainSlot {
    entry: u32,
    next: u32,
}

/// A uniform-grid spatial index over `(Aabb, T)` entries.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell_size: f64,
    entries: Vec<Entry<T>>,
    /// Cell coordinate → its slot chain.
    table: CellTable<CellList>,
    /// Flat slot arena all cell chains live in.
    slots: Vec<ChainSlot>,
}

impl<T> GridIndex<T> {
    /// Creates an empty grid with the given cell size in metres.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive.
    pub fn new(cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "grid cell size must be positive");
        GridIndex { cell_size, entries: Vec::new(), table: CellTable::new(), slots: Vec::new() }
    }

    /// Builds a grid from an iterator of `(bbox, item)` pairs and compacts it
    /// for querying.
    pub fn bulk_load<I>(cell_size: f64, items: I) -> Self
    where
        I: IntoIterator<Item = (Aabb, T)>,
    {
        let mut grid = GridIndex::new(cell_size);
        for (bbox, item) in items {
            grid.insert(bbox, item);
        }
        grid.compact();
        grid
    }

    /// The configured cell size in metres.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of occupied grid cells (diagnostic; useful in benchmarks).
    pub fn occupied_cells(&self) -> usize {
        self.table.len()
    }

    /// Inserts an entry, registering it in every cell its box overlaps
    /// (an O(1) chain prepend per cell).
    pub fn insert(&mut self, bbox: Aabb, item: T) {
        let idx = self.entries.len() as u32;
        self.entries.push(Entry::new(bbox, item));
        let (cx0, cy0) = self.cell_of(&bbox.min);
        let (cx1, cy1) = self.cell_of(&bbox.max);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                let slot = self.slots.len() as u32;
                match self.table.get_mut((cx, cy)) {
                    Some(list) => {
                        self.slots.push(ChainSlot { entry: idx, next: list.head });
                        list.head = slot;
                        list.len += 1;
                    }
                    None => {
                        self.slots.push(ChainSlot { entry: idx, next: NONE });
                        self.table.insert((cx, cy), CellList { head: slot, len: 1 });
                    }
                }
            }
        }
    }

    /// Rewrites the slot arena so each cell's slots are contiguous and in
    /// insertion order (CSR layout). Queries work before and after; after,
    /// the candidate walk is a linear scan per cell. Idempotent; called by
    /// [`GridIndex::bulk_load`] once all entries are in.
    pub fn compact(&mut self) {
        let mut compacted: Vec<ChainSlot> = Vec::with_capacity(self.slots.len());
        for (_, list) in self.table.iter_mut() {
            let begin = compacted.len();
            // The chain is newest-first; copy then reverse to insertion order.
            let mut cur = list.head;
            while cur != NONE {
                let slot = self.slots[cur as usize];
                compacted.push(ChainSlot { entry: slot.entry, next: NONE });
                cur = slot.next;
            }
            compacted[begin..].reverse();
            let end = compacted.len();
            for (i, slot) in compacted[begin..end].iter_mut().enumerate() {
                if begin + i + 1 < end {
                    slot.next = (begin + i + 1) as u32;
                }
            }
            list.head = begin as u32;
        }
        self.slots = compacted;
    }

    /// Access to all entries in insertion order.
    pub fn entries(&self) -> &[Entry<T>] {
        &self.entries
    }

    #[inline]
    fn cell_of(&self, p: &Point) -> (i64, i64) {
        ((p.x / self.cell_size).floor() as i64, (p.y / self.cell_size).floor() as i64)
    }

    /// Calls `f` for every entry whose bounding box intersects `query`, in
    /// insertion order, allocation-free once the caller's [`SeenScratch`]
    /// buffers are warm — the repeated-query form behind the map matcher's
    /// per-sighting candidate-link lookup. Dedup across cells is the
    /// generation-stamped seen mask (O(candidates)); only the unique entry
    /// ids are sorted to restore insertion order.
    pub fn for_each_in_rect<'a>(
        &'a self,
        query: &Aabb,
        seen: &mut SeenScratch,
        mut f: impl FnMut(&'a Entry<T>),
    ) {
        seen.begin(self.entries.len());
        let mut ids = std::mem::take(&mut seen.ids);
        ids.clear();
        let (cx0, cy0) = self.cell_of(&query.min);
        let (cx1, cy1) = self.cell_of(&query.max);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                let Some(list) = self.table.get((cx, cy)) else {
                    continue;
                };
                let mut cur = list.head;
                while cur != NONE {
                    let slot = self.slots[cur as usize];
                    if seen.first_visit(slot.entry) {
                        ids.push(slot.entry);
                    }
                    cur = slot.next;
                }
            }
        }
        ids.sort_unstable();
        for &i in ids.iter() {
            let entry = &self.entries[i as usize];
            if entry.bbox.intersects(query) {
                f(entry);
            }
        }
        seen.ids = ids;
    }
}

impl<T> SpatialIndex<T> for GridIndex<T> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn query_rect<'a>(&'a self, query: &Aabb) -> Vec<&'a Entry<T>> {
        let mut seen = SeenScratch::new();
        let mut hits = Vec::new();
        self.for_each_in_rect(query, &mut seen, |e| hits.push(e));
        hits
    }

    fn nearest<'a>(&'a self, p: &Point, k: usize) -> Vec<Neighbor<'a, T>> {
        if self.entries.is_empty() || k == 0 {
            return Vec::new();
        }
        // Expanding ring search: start with one cell's radius and grow until
        // at least k candidates are found, then do one extra ring to make sure
        // nothing closer hides in a neighbouring cell.
        let mut radius = self.cell_size;
        let mut found: Vec<Neighbor<'a, T>>;
        loop {
            found = self
                .query_rect(&Aabb::around(*p, radius))
                .into_iter()
                .map(|e| Neighbor { distance: e.bbox.distance_to_point(p), entry: e })
                .collect();
            if found.len() >= k || radius > self.extent_radius(p) {
                break;
            }
            radius *= 2.0;
        }
        // One confirming expansion: a box at distance just under `radius` in a
        // diagonal cell could have been missed.
        let confirm = self
            .query_rect(&Aabb::around(*p, radius * 2.0))
            .into_iter()
            .map(|e| Neighbor { distance: e.bbox.distance_to_point(p), entry: e })
            .collect::<Vec<_>>();
        if confirm.len() > found.len() {
            found = confirm;
        }
        found.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("finite distances"));
        found.truncate(k);
        found
    }
}

impl<T> GridIndex<T> {
    /// A radius guaranteed to cover every entry from `p` (used to terminate
    /// the expanding-ring nearest-neighbour search).
    fn extent_radius(&self, p: &Point) -> f64 {
        let mut r: f64 = self.cell_size;
        for e in &self.entries {
            r = r.max(e.bbox.distance_to_point(p) + self.cell_size);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_grid() -> GridIndex<u32> {
        let mut g = GridIndex::new(10.0);
        g.insert(Aabb::around(Point::new(5.0, 5.0), 1.0), 1);
        g.insert(Aabb::around(Point::new(25.0, 5.0), 1.0), 2);
        g.insert(Aabb::around(Point::new(105.0, 105.0), 1.0), 3);
        g.insert(Aabb::new(Point::new(0.0, 0.0), Point::new(50.0, 50.0)), 4); // large box
        g
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_rejected() {
        let _ = GridIndex::<u32>::new(0.0);
    }

    #[test]
    fn query_rect_returns_intersecting_entries_once() {
        let g = sample_grid();
        let hits = g.query_rect(&Aabb::around(Point::new(5.0, 5.0), 3.0));
        let mut items: Vec<u32> = hits.iter().map(|e| e.item).collect();
        items.sort_unstable();
        assert_eq!(items, vec![1, 4]);
    }

    #[test]
    fn query_far_away_is_empty() {
        let g = sample_grid();
        assert!(g.query_rect(&Aabb::around(Point::new(-500.0, -500.0), 10.0)).is_empty());
    }

    #[test]
    fn query_within_filters_by_distance() {
        let g = sample_grid();
        let hits = g.query_within(&Point::new(5.0, 5.0), 15.0);
        let mut items: Vec<u32> = hits.iter().map(|e| e.item).collect();
        items.sort_unstable();
        // Entry 2 is 20 m away minus its 1 m half-extent → 19 m > 15 m radius.
        assert_eq!(items, vec![1, 4]);
    }

    #[test]
    fn scratch_buffer_query_agrees_with_the_allocating_one() {
        let g = sample_grid();
        let mut seen = SeenScratch::new();
        for query in [
            Aabb::around(Point::new(5.0, 5.0), 3.0),
            Aabb::around(Point::new(30.0, 30.0), 40.0),
            Aabb::around(Point::new(-500.0, -500.0), 10.0),
        ] {
            let owned: Vec<u32> = g.query_rect(&query).iter().map(|e| e.item).collect();
            let mut via_scratch = Vec::new();
            g.for_each_in_rect(&query, &mut seen, |e| via_scratch.push(e.item));
            assert_eq!(via_scratch, owned, "{query:?}");
        }
    }

    #[test]
    fn compact_preserves_query_results_and_insertion_order() {
        let mut g = sample_grid();
        let queries = [
            Aabb::around(Point::new(5.0, 5.0), 3.0),
            Aabb::around(Point::new(30.0, 30.0), 40.0),
            Aabb::new(Point::new(-10.0, -10.0), Point::new(200.0, 200.0)),
        ];
        let before: Vec<Vec<u32>> =
            queries.iter().map(|q| g.query_rect(q).iter().map(|e| e.item).collect()).collect();
        g.compact();
        g.compact(); // idempotent
        for (q, expect) in queries.iter().zip(&before) {
            let after: Vec<u32> = g.query_rect(q).iter().map(|e| e.item).collect();
            assert_eq!(&after, expect, "{q:?}");
            assert!(after.windows(2).all(|w| w[0] < w[1]), "insertion order kept");
        }
    }

    #[test]
    fn nearest_orders_by_distance() {
        let g = sample_grid();
        let nn = g.nearest(&Point::new(6.0, 5.0), 3);
        assert_eq!(nn.len(), 3);
        let items: Vec<u32> = nn.iter().map(|n| n.entry.item).collect();
        // Entry 1 (and the large box 4) are at distance 0; entry 2 comes later.
        assert!(items.contains(&1));
        assert!(items.contains(&4));
        assert!(items.contains(&2));
        assert!(nn.windows(2).all(|w| w[0].distance <= w[1].distance));
    }

    #[test]
    fn nearest_finds_far_entries_when_k_requires_it() {
        let g = sample_grid();
        let nn = g.nearest(&Point::new(0.0, 0.0), 4);
        assert_eq!(nn.len(), 4);
        assert_eq!(nn.last().unwrap().entry.item, 3);
    }

    #[test]
    fn nearest_on_empty_index_is_empty() {
        let g: GridIndex<u32> = GridIndex::new(10.0);
        assert!(g.nearest(&Point::ORIGIN, 5).is_empty());
        assert!(g.is_empty());
    }

    #[test]
    fn bulk_load_matches_incremental_insert() {
        let items = vec![
            (Aabb::around(Point::new(1.0, 1.0), 2.0), 10u32),
            (Aabb::around(Point::new(40.0, 40.0), 2.0), 20u32),
        ];
        let g = GridIndex::bulk_load(10.0, items);
        assert_eq!(g.len(), 2);
        assert_eq!(g.query_within(&Point::new(1.0, 1.0), 5.0).len(), 1);
        assert!(g.occupied_cells() >= 2);
    }

    #[test]
    fn large_entry_spans_multiple_cells() {
        let g = sample_grid();
        // The 50x50 box (item 4) must be found from opposite corners.
        assert!(g.query_within(&Point::new(49.0, 49.0), 2.0).iter().any(|e| e.item == 4));
        assert!(g.query_within(&Point::new(1.0, 1.0), 2.0).iter().any(|e| e.item == 4));
    }
}
