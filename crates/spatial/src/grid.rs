//! Uniform grid (spatial hash) index.
//!
//! The grid partitions the plane into square cells of a fixed size; every
//! entry is registered in all cells its bounding box overlaps. Queries then
//! only inspect the cells touched by the query region. With a cell size on the
//! order of the map-matching tolerance `u_m` (tens of metres) a candidate-link
//! query touches a handful of cells and a handful of links — constant time in
//! practice, independent of the map size.

use crate::{Entry, Neighbor, SpatialIndex};
use mbdr_geo::{Aabb, Point};
use std::collections::HashMap;

/// A uniform-grid spatial index over `(Aabb, T)` entries.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell_size: f64,
    entries: Vec<Entry<T>>,
    /// Cell coordinates → indexes into `entries`.
    cells: HashMap<(i64, i64), Vec<u32>>,
}

impl<T> GridIndex<T> {
    /// Creates an empty grid with the given cell size in metres.
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive.
    pub fn new(cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "grid cell size must be positive");
        GridIndex { cell_size, entries: Vec::new(), cells: HashMap::new() }
    }

    /// Builds a grid from an iterator of `(bbox, item)` pairs.
    pub fn bulk_load<I>(cell_size: f64, items: I) -> Self
    where
        I: IntoIterator<Item = (Aabb, T)>,
    {
        let mut grid = GridIndex::new(cell_size);
        for (bbox, item) in items {
            grid.insert(bbox, item);
        }
        grid
    }

    /// The configured cell size in metres.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of occupied grid cells (diagnostic; useful in benchmarks).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Inserts an entry, registering it in every cell its box overlaps.
    pub fn insert(&mut self, bbox: Aabb, item: T) {
        let idx = self.entries.len() as u32;
        self.entries.push(Entry::new(bbox, item));
        let (cx0, cy0) = self.cell_of(&bbox.min);
        let (cx1, cy1) = self.cell_of(&bbox.max);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                self.cells.entry((cx, cy)).or_default().push(idx);
            }
        }
    }

    /// Access to all entries in insertion order.
    pub fn entries(&self) -> &[Entry<T>] {
        &self.entries
    }

    #[inline]
    fn cell_of(&self, p: &Point) -> (i64, i64) {
        ((p.x / self.cell_size).floor() as i64, (p.y / self.cell_size).floor() as i64)
    }

    /// Writes the indexes of entries registered in cells overlapping `query`
    /// into `out` (cleared first), deduplicated, in ascending entry order.
    /// The buffer is caller-owned scratch: reusing it across queries makes
    /// the candidate walk allocation-free in steady state.
    fn candidate_indexes_into(&self, query: &Aabb, out: &mut Vec<u32>) {
        out.clear();
        let (cx0, cy0) = self.cell_of(&query.min);
        let (cx1, cy1) = self.cell_of(&query.max);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    out.extend_from_slice(ids);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Calls `f` for every entry whose bounding box intersects `query`, in
    /// insertion order, using `scratch` as the candidate buffer — the
    /// allocation-free form of [`SpatialIndex::query_rect`] for repeated
    /// queries (the map matcher's per-sighting candidate-link lookup).
    pub fn for_each_in_rect(
        &self,
        query: &Aabb,
        scratch: &mut Vec<u32>,
        mut f: impl FnMut(&Entry<T>),
    ) {
        self.candidate_indexes_into(query, scratch);
        for &i in scratch.iter() {
            let entry = &self.entries[i as usize];
            if entry.bbox.intersects(query) {
                f(entry);
            }
        }
    }
}

impl<T> SpatialIndex<T> for GridIndex<T> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn query_rect<'a>(&'a self, query: &Aabb) -> Vec<&'a Entry<T>> {
        let mut indexes = Vec::new();
        self.candidate_indexes_into(query, &mut indexes);
        indexes
            .into_iter()
            .map(|i| &self.entries[i as usize])
            .filter(|e| e.bbox.intersects(query))
            .collect()
    }

    fn nearest<'a>(&'a self, p: &Point, k: usize) -> Vec<Neighbor<'a, T>> {
        if self.entries.is_empty() || k == 0 {
            return Vec::new();
        }
        // Expanding ring search: start with one cell's radius and grow until
        // at least k candidates are found, then do one extra ring to make sure
        // nothing closer hides in a neighbouring cell.
        let mut radius = self.cell_size;
        let mut found: Vec<Neighbor<'a, T>>;
        loop {
            found = self
                .query_rect(&Aabb::around(*p, radius))
                .into_iter()
                .map(|e| Neighbor { distance: e.bbox.distance_to_point(p), entry: e })
                .collect();
            if found.len() >= k || radius > self.extent_radius(p) {
                break;
            }
            radius *= 2.0;
        }
        // One confirming expansion: a box at distance just under `radius` in a
        // diagonal cell could have been missed.
        let confirm = self
            .query_rect(&Aabb::around(*p, radius * 2.0))
            .into_iter()
            .map(|e| Neighbor { distance: e.bbox.distance_to_point(p), entry: e })
            .collect::<Vec<_>>();
        if confirm.len() > found.len() {
            found = confirm;
        }
        found.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("finite distances"));
        found.truncate(k);
        found
    }
}

impl<T> GridIndex<T> {
    /// A radius guaranteed to cover every entry from `p` (used to terminate
    /// the expanding-ring nearest-neighbour search).
    fn extent_radius(&self, p: &Point) -> f64 {
        let mut r: f64 = self.cell_size;
        for e in &self.entries {
            r = r.max(e.bbox.distance_to_point(p) + self.cell_size);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_grid() -> GridIndex<u32> {
        let mut g = GridIndex::new(10.0);
        g.insert(Aabb::around(Point::new(5.0, 5.0), 1.0), 1);
        g.insert(Aabb::around(Point::new(25.0, 5.0), 1.0), 2);
        g.insert(Aabb::around(Point::new(105.0, 105.0), 1.0), 3);
        g.insert(Aabb::new(Point::new(0.0, 0.0), Point::new(50.0, 50.0)), 4); // large box
        g
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_rejected() {
        let _ = GridIndex::<u32>::new(0.0);
    }

    #[test]
    fn query_rect_returns_intersecting_entries_once() {
        let g = sample_grid();
        let hits = g.query_rect(&Aabb::around(Point::new(5.0, 5.0), 3.0));
        let mut items: Vec<u32> = hits.iter().map(|e| e.item).collect();
        items.sort_unstable();
        assert_eq!(items, vec![1, 4]);
    }

    #[test]
    fn query_far_away_is_empty() {
        let g = sample_grid();
        assert!(g.query_rect(&Aabb::around(Point::new(-500.0, -500.0), 10.0)).is_empty());
    }

    #[test]
    fn query_within_filters_by_distance() {
        let g = sample_grid();
        let hits = g.query_within(&Point::new(5.0, 5.0), 15.0);
        let mut items: Vec<u32> = hits.iter().map(|e| e.item).collect();
        items.sort_unstable();
        // Entry 2 is 20 m away minus its 1 m half-extent → 19 m > 15 m radius.
        assert_eq!(items, vec![1, 4]);
    }

    #[test]
    fn scratch_buffer_query_agrees_with_the_allocating_one() {
        let g = sample_grid();
        let mut scratch = vec![42u32; 3]; // stale contents must not leak through
        for query in [
            Aabb::around(Point::new(5.0, 5.0), 3.0),
            Aabb::around(Point::new(30.0, 30.0), 40.0),
            Aabb::around(Point::new(-500.0, -500.0), 10.0),
        ] {
            let owned: Vec<u32> = g.query_rect(&query).iter().map(|e| e.item).collect();
            let mut via_scratch = Vec::new();
            g.for_each_in_rect(&query, &mut scratch, |e| via_scratch.push(e.item));
            assert_eq!(via_scratch, owned, "{query:?}");
        }
    }

    #[test]
    fn nearest_orders_by_distance() {
        let g = sample_grid();
        let nn = g.nearest(&Point::new(6.0, 5.0), 3);
        assert_eq!(nn.len(), 3);
        let items: Vec<u32> = nn.iter().map(|n| n.entry.item).collect();
        // Entry 1 (and the large box 4) are at distance 0; entry 2 comes later.
        assert!(items.contains(&1));
        assert!(items.contains(&4));
        assert!(items.contains(&2));
        assert!(nn.windows(2).all(|w| w[0].distance <= w[1].distance));
    }

    #[test]
    fn nearest_finds_far_entries_when_k_requires_it() {
        let g = sample_grid();
        let nn = g.nearest(&Point::new(0.0, 0.0), 4);
        assert_eq!(nn.len(), 4);
        assert_eq!(nn.last().unwrap().entry.item, 3);
    }

    #[test]
    fn nearest_on_empty_index_is_empty() {
        let g: GridIndex<u32> = GridIndex::new(10.0);
        assert!(g.nearest(&Point::ORIGIN, 5).is_empty());
        assert!(g.is_empty());
    }

    #[test]
    fn bulk_load_matches_incremental_insert() {
        let items = vec![
            (Aabb::around(Point::new(1.0, 1.0), 2.0), 10u32),
            (Aabb::around(Point::new(40.0, 40.0), 2.0), 20u32),
        ];
        let g = GridIndex::bulk_load(10.0, items);
        assert_eq!(g.len(), 2);
        assert_eq!(g.query_within(&Point::new(1.0, 1.0), 5.0).len(), 1);
        assert!(g.occupied_cells() >= 2);
    }

    #[test]
    fn large_entry_spans_multiple_cells() {
        let g = sample_grid();
        // The 50x50 box (item 4) must be found from opposite corners.
        assert!(g.query_within(&Point::new(49.0, 49.0), 2.0).iter().any(|e| e.item == 4));
        assert!(g.query_within(&Point::new(1.0, 1.0), 2.0).iter().any(|e| e.item == 4));
    }
}
