//! End-to-end map-matching tests on generated scenario traces.

use mbdr_mapmatch::{MapMatcher, MatcherConfig};
use mbdr_trace::{Scenario, ScenarioKind};
use std::sync::Arc;

/// Runs the matcher over a quick scenario trace and returns
/// (matched fraction, max matched distance).
fn match_scenario(kind: ScenarioKind, seed: u64) -> (f64, f64) {
    let data = Scenario::quick(kind, seed).build();
    let network = Arc::new(data.network);
    let mut matcher = MapMatcher::for_network(
        Arc::clone(&network),
        MatcherConfig::with_tolerance(data.matching_tolerance),
    );
    let mut matched = 0usize;
    let mut max_distance = 0.0f64;
    for fix in &data.trace.fixes {
        let r = matcher.update(fix.position);
        if r.is_matched() {
            matched += 1;
            max_distance = max_distance.max(r.distance);
        }
    }
    (matched as f64 / data.trace.len() as f64, max_distance)
}

#[test]
fn freeway_trace_is_almost_always_matched() {
    let (fraction, max_d) = match_scenario(ScenarioKind::Freeway, 21);
    assert!(fraction > 0.95, "matched fraction {fraction}");
    assert!(max_d <= 30.0 + 1e-6, "matched distance must respect u_m, got {max_d}");
}

#[test]
fn city_trace_is_almost_always_matched() {
    let (fraction, max_d) = match_scenario(ScenarioKind::City, 22);
    assert!(fraction > 0.9, "matched fraction {fraction}");
    assert!(max_d <= 30.0 + 1e-6);
}

#[test]
fn interurban_trace_is_almost_always_matched() {
    let (fraction, _) = match_scenario(ScenarioKind::Interurban, 23);
    assert!(fraction > 0.9, "matched fraction {fraction}");
}

#[test]
fn walking_trace_is_mostly_matched() {
    // Footpaths are tighter (u_m = 20 m) and walking GPS error is relatively
    // larger, so allow a slightly lower bar.
    let (fraction, max_d) = match_scenario(ScenarioKind::Walking, 24);
    assert!(fraction > 0.85, "matched fraction {fraction}");
    assert!(max_d <= 20.0 + 1e-6);
}

#[test]
fn matched_link_is_usually_the_true_route_link() {
    // The matcher does not know the route; verify against the planned route's
    // link set — the matched link should almost always be one of the links the
    // trip actually uses.
    let data = Scenario::quick(ScenarioKind::Interurban, 25).build();
    let route_links: std::collections::HashSet<_> = data.trip.route.links.iter().copied().collect();
    let network = Arc::new(data.network);
    let mut matcher = MapMatcher::for_network(
        Arc::clone(&network),
        MatcherConfig::with_tolerance(data.matching_tolerance),
    );
    let mut on_route = 0usize;
    let mut matched = 0usize;
    for fix in &data.trace.fixes {
        let r = matcher.update(fix.position);
        if let Some(link) = r.link {
            matched += 1;
            if route_links.contains(&link) {
                on_route += 1;
            }
        }
    }
    assert!(matched > 0);
    let fraction = on_route as f64 / matched as f64;
    assert!(fraction > 0.9, "on-route fraction {fraction}");
}
