//! # mbdr-mapmatch — incremental map matching
//!
//! Section 3 of the paper describes the map-matching machinery the map-based
//! dead-reckoning protocol runs at the source:
//!
//! * a position can be matched to a link if it is at most `u_m` away from it;
//!   the sensed position `p_p` is projected perpendicularly onto the link to
//!   obtain the corrected position `p_c` (Fig. 5);
//! * on initialisation, candidate links are found through a spatial index and
//!   the nearest one within `u_m` is selected;
//! * when the position drifts farther than `u_m` from the current link, the
//!   matcher uses **forward tracking** (the object passed the link's end
//!   node → inspect that intersection's outgoing links) or **backward
//!   tracking** (the original link choice was wrong → go back to the previous
//!   intersection(s) and inspect the other outgoing links);
//! * when neither finds a link, the object is **off the map** and the matcher
//!   keeps trying to re-acquire a link via the spatial index.
//!
//! [`MapMatcher`] implements exactly this incremental state machine and
//! additionally reports link-transition events, which the
//! probability-enhanced protocol variant uses to learn its transition tables.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod matcher;

pub use config::MatcherConfig;
pub use matcher::{MapMatcher, MatchEvent, MatchResult};
