//! Map-matcher configuration.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the incremental map matcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// `u_m`: maximum distance (metres) between a sensed position and a link
    /// for the position to be matched to that link. "The parameter u_m
    /// determines how exact the position must be matched to a link and
    /// reflects the accuracy of the sensor system" (paper, Section 3).
    pub tolerance: f64,
    /// How many intersections backward tracking may walk back through when the
    /// current-link hypothesis turns out to be wrong.
    pub backtrack_depth: usize,
    /// Fraction of the link length (from either end) within which a clamped
    /// projection is interpreted as "the object has passed the end of the
    /// link" and forward tracking is triggered.
    pub endpoint_fraction: f64,
}

impl MatcherConfig {
    /// A configuration with the given tolerance and default tracking depths.
    pub fn with_tolerance(tolerance: f64) -> Self {
        MatcherConfig { tolerance, ..MatcherConfig::default() }
    }
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            // Generous relative to the 2–5 m DGPS accuracy: position errors
            // plus road-geometry simplification both eat into the budget.
            tolerance: 30.0,
            backtrack_depth: 2,
            endpoint_fraction: 0.02,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sensible() {
        let c = MatcherConfig::default();
        assert!(c.tolerance > 5.0, "tolerance should exceed the sensor error");
        assert!(c.backtrack_depth >= 1);
        assert!(c.endpoint_fraction > 0.0 && c.endpoint_fraction < 0.5);
    }

    #[test]
    fn with_tolerance_overrides_only_the_tolerance() {
        let c = MatcherConfig::with_tolerance(15.0);
        assert_eq!(c.tolerance, 15.0);
        assert_eq!(c.backtrack_depth, MatcherConfig::default().backtrack_depth);
    }
}
