//! The incremental map-matching state machine.

use crate::config::MatcherConfig;
use mbdr_geo::Point;
use mbdr_roadnet::{LinkId, LinkLocator, NodeId, RoadNetwork};
use std::sync::Arc;

/// What happened during one matcher update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchEvent {
    /// The matcher acquired its first link (or re-acquired one after being
    /// off the map).
    Acquired,
    /// The position still matches the current link.
    Continued,
    /// The object passed the end of its link and forward tracking selected a
    /// new link over the given intersection.
    AdvancedOver(NodeId),
    /// The previous link choice was wrong; backward tracking corrected it at
    /// the given intersection.
    Backtracked(NodeId),
    /// No link within tolerance: the object is off the map.
    LostMap,
    /// The object was already off the map and still is.
    StillOffMap,
}

/// Result of one matcher update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchResult {
    /// The matched link, or `None` while off the map.
    pub link: Option<LinkId>,
    /// Corrected position `p_c`: the sensed position projected onto the
    /// matched link (equal to the sensed position while off the map).
    pub corrected: Point,
    /// Distance from the sensed position to the matched link (or `f64::MAX`
    /// while off the map).
    pub distance: f64,
    /// Arc length of the corrected position along the matched link, measured
    /// from the link's `from` node (0 while off the map).
    pub arc_length: f64,
    /// What the matcher did.
    pub event: MatchEvent,
}

impl MatchResult {
    fn off_map(sensed: Point, still: bool) -> Self {
        MatchResult {
            link: None,
            corrected: sensed,
            distance: f64::MAX,
            arc_length: 0.0,
            event: if still { MatchEvent::StillOffMap } else { MatchEvent::LostMap },
        }
    }

    /// Returns `true` if the position was matched to some link.
    pub fn is_matched(&self) -> bool {
        self.link.is_some()
    }
}

/// Direction of travel along the current link.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Travel {
    /// Moving towards the link's `to` node (arc length increasing).
    TowardsTo,
    /// Moving towards the link's `from` node (arc length decreasing).
    TowardsFrom,
    /// Not yet known (too little movement observed).
    Unknown,
}

#[derive(Debug, Clone)]
struct CurrentLink {
    link: LinkId,
    last_arc_length: f64,
    travel: Travel,
    /// The node over which this link was entered, if known (anchor for
    /// backward tracking).
    entered_at: Option<NodeId>,
}

/// Incremental map matcher: feed it one sensed position per sensor fix and it
/// maintains the current-link hypothesis exactly as described in Section 3 of
/// the paper.
#[derive(Debug, Clone)]
pub struct MapMatcher {
    network: Arc<RoadNetwork>,
    locator: Arc<LinkLocator>,
    config: MatcherConfig,
    current: Option<CurrentLink>,
    /// Recently visited intersections, most recent last (bounded by
    /// `config.backtrack_depth + 1`).
    node_history: Vec<NodeId>,
}

impl MapMatcher {
    /// Creates a matcher over the given network.
    pub fn new(
        network: Arc<RoadNetwork>,
        locator: Arc<LinkLocator>,
        config: MatcherConfig,
    ) -> Self {
        MapMatcher { network, locator, config, current: None, node_history: Vec::new() }
    }

    /// Convenience constructor that builds the locator internally.
    pub fn for_network(network: Arc<RoadNetwork>, config: MatcherConfig) -> Self {
        let locator = Arc::new(LinkLocator::build(&network));
        MapMatcher::new(network, locator, config)
    }

    /// The matcher's configuration.
    pub fn config(&self) -> &MatcherConfig {
        &self.config
    }

    /// The current link hypothesis, if any.
    pub fn current_link(&self) -> Option<LinkId> {
        self.current.as_ref().map(|c| c.link)
    }

    /// Forgets all state (used when a protocol falls back to linear prediction
    /// and later wants a fresh start).
    pub fn reset(&mut self) {
        self.current = None;
        self.node_history.clear();
    }

    /// Processes one sensed position and returns the match result.
    pub fn update(&mut self, sensed: Point) -> MatchResult {
        match self.current.take() {
            None => self.acquire(sensed, /*was_off_map=*/ true),
            Some(current) => self.track(current, sensed),
        }
    }

    /// Initial (or re-)acquisition through the spatial index: nearest link
    /// within `u_m`.
    fn acquire(&mut self, sensed: Point, was_off_map: bool) -> MatchResult {
        match self.locator.nearest_link(&self.network, &sensed, self.config.tolerance) {
            Some(m) => {
                self.current = Some(CurrentLink {
                    link: m.link,
                    last_arc_length: m.arc_length,
                    travel: Travel::Unknown,
                    entered_at: None,
                });
                MatchResult {
                    link: Some(m.link),
                    corrected: m.position_on_link,
                    distance: m.distance,
                    arc_length: m.arc_length,
                    event: MatchEvent::Acquired,
                }
            }
            None => MatchResult::off_map(sensed, was_off_map),
        }
    }

    /// Tracking with a current-link hypothesis.
    fn track(&mut self, mut current: CurrentLink, sensed: Point) -> MatchResult {
        let link = self.network.link(current.link);
        let proj = link.geometry.project(&sensed);

        if proj.distance <= self.config.tolerance {
            // Still on the link: update the travel direction estimate.
            let delta = proj.arc_length - current.last_arc_length;
            if delta > 1.0 {
                current.travel = Travel::TowardsTo;
            } else if delta < -1.0 {
                current.travel = Travel::TowardsFrom;
            }
            current.last_arc_length = proj.arc_length;
            let result = MatchResult {
                link: Some(current.link),
                corrected: proj.point,
                distance: proj.distance,
                arc_length: proj.arc_length,
                event: MatchEvent::Continued,
            };
            self.current = Some(current);
            return result;
        }

        // The position left the tolerance band around the current link.
        // Decide between forward tracking (the object passed the end of the
        // link) and backward tracking (the link choice was wrong).
        let link_length = link.length();
        let near_end_band = (link_length * self.config.endpoint_fraction).max(2.0);
        let passed_to =
            proj.arc_length >= link_length - near_end_band && current.travel != Travel::TowardsFrom;
        let passed_from = proj.arc_length <= near_end_band && current.travel == Travel::TowardsFrom;

        if passed_to || passed_from {
            let via = if passed_to { link.to } else { link.from };
            if let Some(result) = self.forward_track(&current, via, sensed) {
                return result;
            }
        }

        // Backward tracking: re-examine the intersections we came from.
        if let Some(result) = self.backward_track(&current, sensed) {
            return result;
        }

        // Give the global index one chance before declaring the object off the
        // map — the object may have jumped onto an unrelated nearby road (e.g.
        // after a long GPS outage in an underpass).
        self.node_history.clear();
        self.acquire_after_loss(sensed)
    }

    /// Forward tracking over intersection `via`: choose the nearest outgoing
    /// link (other than the current one) within tolerance.
    fn forward_track(
        &mut self,
        current: &CurrentLink,
        via: NodeId,
        sensed: Point,
    ) -> Option<MatchResult> {
        let best = self.best_outgoing_link(via, Some(current.link), &sensed)?;
        self.push_history(via);
        let (link_id, m) = best;
        let travel = self.initial_travel(link_id, via);
        self.current = Some(CurrentLink {
            link: link_id,
            last_arc_length: m.arc_length,
            travel,
            entered_at: Some(via),
        });
        Some(MatchResult {
            link: Some(link_id),
            corrected: m.position_on_link,
            distance: m.distance,
            arc_length: m.arc_length,
            event: MatchEvent::AdvancedOver(via),
        })
    }

    /// Backward tracking: the previously selected link was probably wrong; go
    /// back to the intersection(s) we entered it from and inspect their other
    /// outgoing links.
    fn backward_track(&mut self, current: &CurrentLink, sensed: Point) -> Option<MatchResult> {
        // Candidate anchors: the node the current link was entered at, then
        // the recent node history (most recent first), bounded by the depth.
        let mut anchors: Vec<NodeId> = Vec::new();
        if let Some(n) = current.entered_at {
            anchors.push(n);
        }
        for &n in self.node_history.iter().rev() {
            if !anchors.contains(&n) {
                anchors.push(n);
            }
        }
        anchors.truncate(self.config.backtrack_depth);

        for via in anchors {
            if let Some((link_id, m)) = self.best_outgoing_link(via, Some(current.link), &sensed) {
                let travel = self.initial_travel(link_id, via);
                self.current = Some(CurrentLink {
                    link: link_id,
                    last_arc_length: m.arc_length,
                    travel,
                    entered_at: Some(via),
                });
                return Some(MatchResult {
                    link: Some(link_id),
                    corrected: m.position_on_link,
                    distance: m.distance,
                    arc_length: m.arc_length,
                    event: MatchEvent::Backtracked(via),
                });
            }
        }
        None
    }

    /// After losing the map, try a plain re-acquisition; report `LostMap` (or
    /// `StillOffMap`) accordingly.
    fn acquire_after_loss(&mut self, sensed: Point) -> MatchResult {
        match self.locator.nearest_link(&self.network, &sensed, self.config.tolerance) {
            Some(m) => {
                self.current = Some(CurrentLink {
                    link: m.link,
                    last_arc_length: m.arc_length,
                    travel: Travel::Unknown,
                    entered_at: None,
                });
                MatchResult {
                    link: Some(m.link),
                    corrected: m.position_on_link,
                    distance: m.distance,
                    arc_length: m.arc_length,
                    event: MatchEvent::Acquired,
                }
            }
            None => {
                self.current = None;
                MatchResult::off_map(sensed, false)
            }
        }
    }

    /// The best (nearest within tolerance) link incident to `via`, excluding
    /// `exclude`, for the sensed position.
    fn best_outgoing_link(
        &self,
        via: NodeId,
        exclude: Option<LinkId>,
        sensed: &Point,
    ) -> Option<(LinkId, mbdr_roadnet::LinkMatch)> {
        let mut best: Option<(LinkId, mbdr_roadnet::LinkMatch)> = None;
        for link_id in self.network.outgoing_links(via, exclude) {
            let m = self.locator.project_onto(&self.network, link_id, sensed);
            if m.distance > self.config.tolerance {
                continue;
            }
            if best.as_ref().map(|(_, b)| m.distance < b.distance).unwrap_or(true) {
                best = Some((link_id, m));
            }
        }
        best
    }

    /// Travel direction on a link that was just entered over `via`.
    fn initial_travel(&self, link: LinkId, via: NodeId) -> Travel {
        let l = self.network.link(link);
        if l.from == via {
            Travel::TowardsTo
        } else if l.to == via {
            Travel::TowardsFrom
        } else {
            Travel::Unknown
        }
    }

    fn push_history(&mut self, node: NodeId) {
        self.node_history.push(node);
        let cap = self.config.backtrack_depth + 1;
        if self.node_history.len() > cap {
            let excess = self.node_history.len() - cap;
            self.node_history.drain(..excess);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_geo::Point;
    use mbdr_roadnet::{NetworkBuilder, RoadClass};

    /// A T-junction: a west-east street (A—B—C) with a southbound stub at B.
    ///
    /// ```text
    ///   A(0,0) ——— B(200,0) ——— C(400,0)
    ///                  |
    ///               D(200,-200)
    /// ```
    fn t_junction() -> (Arc<RoadNetwork>, Arc<LinkLocator>) {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let bb = b.add_node(Point::new(200.0, 0.0));
        let c = b.add_node(Point::new(400.0, 0.0));
        let d = b.add_node(Point::new(200.0, -200.0));
        b.add_straight_link(a, bb, RoadClass::Residential); // link 0
        b.add_straight_link(bb, c, RoadClass::Residential); // link 1
        b.add_straight_link(bb, d, RoadClass::Residential); // link 2
        let net = Arc::new(b.build().unwrap());
        let loc = Arc::new(LinkLocator::build(&net));
        (net, loc)
    }

    fn matcher(tolerance: f64) -> MapMatcher {
        let (net, loc) = t_junction();
        MapMatcher::new(net, loc, MatcherConfig::with_tolerance(tolerance))
    }

    #[test]
    fn acquisition_matches_the_nearest_link_within_um() {
        let mut m = matcher(30.0);
        let r = m.update(Point::new(50.0, 8.0));
        assert_eq!(r.event, MatchEvent::Acquired);
        assert_eq!(r.link, Some(LinkId(0)));
        assert!((r.distance - 8.0).abs() < 1e-6);
        assert!((r.corrected.y - 0.0).abs() < 1e-6, "corrected position lies on the link");
        assert!((r.corrected.x - 50.0).abs() < 1e-6);
    }

    #[test]
    fn far_from_any_link_is_off_map() {
        let mut m = matcher(30.0);
        let r = m.update(Point::new(50.0, 500.0));
        assert!(!r.is_matched());
        assert_eq!(r.event, MatchEvent::StillOffMap);
        assert_eq!(r.corrected, Point::new(50.0, 500.0));
        assert!(m.current_link().is_none());
    }

    #[test]
    fn continues_on_the_same_link_while_within_tolerance() {
        let mut m = matcher(30.0);
        m.update(Point::new(20.0, 5.0));
        let r = m.update(Point::new(60.0, -7.0));
        assert_eq!(r.event, MatchEvent::Continued);
        assert_eq!(r.link, Some(LinkId(0)));
    }

    #[test]
    fn forward_tracking_straight_over_the_junction() {
        let mut m = matcher(30.0);
        // Drive east along link 0 towards B…
        for x in [20.0, 80.0, 140.0, 190.0] {
            m.update(Point::new(x, 3.0));
        }
        // …and past B onto link 1. The first fix clearly beyond B (and more
        // than u_m from link 0's geometry is impossible here because links 0
        // and 1 are collinear, so instead turn south to exercise the
        // transition): drive onto the southbound stub.
        let r = m.update(Point::new(202.0, -60.0));
        assert_eq!(r.link, Some(LinkId(2)), "should pick the southbound link");
        match r.event {
            MatchEvent::AdvancedOver(n) => assert_eq!(n, NodeId(1)),
            other => panic!("expected AdvancedOver, got {other:?}"),
        }
        assert!(r.distance <= 30.0);
    }

    #[test]
    fn collinear_continuation_is_handled_via_reacquisition_or_projection() {
        // Driving straight through the junction A→B→C: link 0 and link 1 are
        // collinear so the projection onto link 0 clamps at B with distance
        // growing beyond u_m; the matcher must end up on link 1.
        let mut m = matcher(30.0);
        for x in [20.0, 100.0, 180.0] {
            m.update(Point::new(x, 2.0));
        }
        let r = m.update(Point::new(260.0, 2.0));
        assert_eq!(r.link, Some(LinkId(1)));
        let r = m.update(Point::new(340.0, -2.0));
        assert_eq!(r.link, Some(LinkId(1)));
        assert_eq!(r.event, MatchEvent::Continued);
    }

    #[test]
    fn backward_tracking_corrects_a_wrong_turn_choice() {
        let mut m = matcher(15.0);
        // Approach B heading east on link 0.
        for x in [120.0, 160.0, 188.0] {
            m.update(Point::new(x, 1.0));
        }
        // A noisy fix past the junction, still within u_m of the eastbound
        // link 1: the matcher advances onto link 1 — the wrong choice, because
        // the object actually turns south.
        let r1 = m.update(Point::new(225.0, -14.0));
        assert_eq!(r1.link, Some(LinkId(1)));
        assert!(matches!(r1.event, MatchEvent::AdvancedOver(n) if n == NodeId(1)));
        // The next fix is clearly south of the junction and > u_m from link 1,
        // but has *not* passed link 1's far end → backward tracking at B must
        // correct the hypothesis to the southbound link 2.
        let r2 = m.update(Point::new(206.0, -50.0));
        assert_eq!(r2.link, Some(LinkId(2)));
        assert!(matches!(r2.event, MatchEvent::Backtracked(n) if n == NodeId(1)));
    }

    #[test]
    fn losing_and_reacquiring_the_map() {
        let mut m = matcher(30.0);
        m.update(Point::new(50.0, 5.0));
        // Wander far off every link.
        let r = m.update(Point::new(50.0, 400.0));
        assert_eq!(r.event, MatchEvent::LostMap);
        assert!(m.current_link().is_none());
        let r = m.update(Point::new(55.0, 400.0));
        assert_eq!(r.event, MatchEvent::StillOffMap);
        // Come back near the street → re-acquired.
        let r = m.update(Point::new(60.0, 12.0));
        assert_eq!(r.event, MatchEvent::Acquired);
        assert_eq!(r.link, Some(LinkId(0)));
    }

    #[test]
    fn reset_clears_all_state() {
        let mut m = matcher(30.0);
        m.update(Point::new(50.0, 5.0));
        assert!(m.current_link().is_some());
        m.reset();
        assert!(m.current_link().is_none());
        // After reset the next update acquires again.
        assert_eq!(m.update(Point::new(55.0, 5.0)).event, MatchEvent::Acquired);
    }

    #[test]
    fn corrected_position_is_never_farther_than_the_raw_distance() {
        let mut m = matcher(30.0);
        let sensed = Point::new(100.0, 20.0);
        let r = m.update(sensed);
        assert!(r.is_matched());
        assert!(r.distance <= 30.0);
        assert!((sensed.distance(&r.corrected) - r.distance).abs() < 1e-9);
    }

    #[test]
    fn tolerance_is_respected_strictly() {
        let mut m = matcher(10.0);
        // 15 m from the street with a 10 m tolerance: no match.
        assert!(!m.update(Point::new(100.0, 15.0)).is_matched());
        // 8 m away: match.
        assert!(m.update(Point::new(100.0, 8.0)).is_matched());
    }
}
