//! Client-side retry with jittered exponential backoff.
//!
//! A serving layer that can restart (crash recovery, rolling deploys,
//! degraded-disk incidents) needs clients that outlive one TCP connection.
//! [`RetryPolicy`] is the shared schedule: backoff doubles from
//! [`RetryPolicy::initial_backoff`] up to [`RetryPolicy::max_backoff`], each
//! delay is jittered (half fixed, half seeded-random — "equal jitter", so a
//! fleet of clients killed by the same server restart does not reconnect in
//! lockstep), and the whole attempt loop is capped by
//! [`RetryPolicy::deadline`].
//!
//! The jitter stream is a seeded splitmix64: the full delay schedule is a
//! pure function of the policy ([`RetryPolicy::delays`]), so tests assert
//! exact schedules instead of sleeping, and two clients with different seeds
//! spread out while a replayed run stays bit-identical.

use std::time::{Duration, Instant};

/// A jittered exponential backoff schedule with a total deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First retry delay (pre-jitter). Doubles per attempt.
    pub initial_backoff: Duration,
    /// Cap on the pre-jitter delay.
    pub max_backoff: Duration,
    /// Total budget for the attempt loop, measured from the first attempt:
    /// once it elapses, the last error is returned instead of retried.
    pub deadline: Duration,
    /// Seed of the jitter stream. Give every client its own seed so a mass
    /// disconnect does not turn into a synchronized reconnect storm.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            deadline: Duration::from_secs(30),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The deterministic delay schedule: an infinite iterator of jittered
    /// backoffs (the `deadline` is enforced by [`RetryPolicy::run`], not
    /// here). Each delay lies in `[base/2, base]` where `base` doubles from
    /// `initial_backoff` to `max_backoff`.
    pub fn delays(&self) -> Delays {
        Delays {
            base: self.initial_backoff.min(self.max_backoff),
            max: self.max_backoff,
            rng: self.jitter_seed,
        }
    }

    /// Runs `op` until it succeeds or the deadline expires, sleeping the
    /// scheduled delay between attempts (truncated to the remaining budget).
    /// The first attempt is immediate; the error of the final attempt is
    /// returned verbatim.
    pub fn run<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
        let start = Instant::now();
        let mut delays = self.delays();
        loop {
            let err = match op() {
                Ok(value) => return Ok(value),
                Err(err) => err,
            };
            let elapsed = start.elapsed();
            if elapsed >= self.deadline {
                return Err(err);
            }
            let Some(delay) = delays.next() else {
                return Err(err);
            };
            std::thread::sleep(delay.min(self.deadline.saturating_sub(elapsed)));
        }
    }
}

/// Iterator form of a [`RetryPolicy`]'s delay schedule (see
/// [`RetryPolicy::delays`]).
#[derive(Debug, Clone)]
pub struct Delays {
    base: Duration,
    max: Duration,
    rng: u64,
}

/// One step of the splitmix64 stream the jitter draws from.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Iterator for Delays {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        let base = self.base.as_nanos().min(u128::from(u64::MAX)) as u64;
        // Equal jitter: half the base is fixed, half is uniform random — the
        // delay never collapses to zero (which would hammer a down server)
        // and never exceeds the base.
        let half = base / 2;
        let jitter = if half == 0 { 0 } else { splitmix64(&mut self.rng) % (half + 1) };
        let delay = Duration::from_nanos(half + jitter);
        self.base = (self.base.saturating_mul(2)).min(self.max);
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(seed: u64) -> RetryPolicy {
        RetryPolicy {
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(800),
            deadline: Duration::from_secs(10),
            jitter_seed: seed,
        }
    }

    #[test]
    fn delays_double_to_the_cap_and_stay_in_the_jitter_band() {
        let mut base = Duration::from_millis(100);
        for (i, delay) in policy(42).delays().take(8).enumerate() {
            assert!(delay >= base / 2, "attempt {i}: {delay:?} below half-base {base:?}");
            assert!(delay <= base, "attempt {i}: {delay:?} above base {base:?}");
            base = (base * 2).min(Duration::from_millis(800));
        }
    }

    #[test]
    fn schedules_are_reproducible_from_the_seed() {
        let a: Vec<Duration> = policy(7).delays().take(6).collect();
        let b: Vec<Duration> = policy(7).delays().take(6).collect();
        let c: Vec<Duration> = policy(8).delays().take(6).collect();
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different jitter");
    }

    #[test]
    fn run_returns_the_first_success() {
        let mut attempts = 0;
        let fast = RetryPolicy {
            initial_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(20),
            deadline: Duration::from_secs(5),
            jitter_seed: 1,
        };
        let result: Result<u32, &str> = fast.run(|| {
            attempts += 1;
            if attempts < 4 {
                Err("not yet")
            } else {
                Ok(99)
            }
        });
        assert_eq!(result, Ok(99));
        assert_eq!(attempts, 4);
    }

    #[test]
    fn run_gives_up_at_the_deadline_with_the_last_error() {
        let expired = RetryPolicy { deadline: Duration::ZERO, ..policy(3) };
        let mut attempts = 0;
        let result: Result<(), u32> = expired.run(|| {
            attempts += 1;
            Err(attempts)
        });
        assert_eq!(result, Err(1), "zero deadline: exactly one attempt, its error returned");
    }

    #[test]
    fn zero_backoff_policies_do_not_panic() {
        let degenerate = RetryPolicy {
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            deadline: Duration::from_millis(1),
            jitter_seed: 0,
        };
        for delay in degenerate.delays().take(3) {
            assert_eq!(delay, Duration::ZERO);
        }
        let mut attempts = 0u32;
        let _: Result<(), ()> = degenerate.run(|| {
            attempts += 1;
            if attempts > 50 {
                Ok(())
            } else {
                Err(())
            }
        });
        assert!(attempts >= 1);
    }
}
