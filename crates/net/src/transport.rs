//! Length-prefixed message framing over a byte stream.
//!
//! TCP is a byte stream, so the serving layer delimits messages with a
//! 4-byte big-endian length prefix followed by the message body (a kind byte
//! plus payload, see `mbdr_core::wire::query`). The length is the first
//! untrusted field a hostile peer controls: [`read_message`] refuses
//! prefixes above the configured cap *before* allocating, so a 4 GiB claim
//! costs the server four bytes of reading and one typed error, not memory.

use crate::error::NetError;
use std::io::{Read, Write};

/// Default per-message size cap: far above any legitimate frame or response
/// (a full 65 535-update frame is under 4 MiB only for pathological batches;
/// real frames are a few hundred bytes) while keeping hostile allocations
/// bounded.
pub const DEFAULT_MAX_MESSAGE_BYTES: u32 = 1 << 20;

/// Writes one length-prefixed message and flushes. Returns the bytes put on
/// the wire (prefix + body).
pub fn write_message(writer: &mut impl Write, body: &[u8]) -> std::io::Result<u64> {
    let len = u32::try_from(body.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "message body exceeds u32")
    })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(body)?;
    writer.flush()?;
    Ok(4 + body.len() as u64)
}

/// Reads one length-prefixed message.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly at a
/// message boundary. A prefix of zero (no room for the kind byte) or above
/// `max` reports a typed error without reading or allocating the body; EOF
/// in the middle of a message surfaces as [`NetError::Io`].
pub fn read_message(reader: &mut impl Read, max: u32) -> Result<Option<Vec<u8>>, NetError> {
    let mut body = Vec::new();
    Ok(read_message_into(reader, max, &mut body)?.then_some(body))
}

/// Reads one length-prefixed message into a caller-provided buffer — the
/// reusable-buffer form of [`read_message`] both ends of a connection loop
/// on: once the buffer has grown to the connection's largest message, reads
/// allocate nothing.
///
/// Returns `Ok(false)` (buffer cleared) when the peer closed the connection
/// cleanly at a message boundary, `Ok(true)` with the body in `buf`
/// otherwise. Error behaviour is identical to [`read_message`], and the size
/// cap still bounds what a hostile prefix can make the buffer grow to.
pub fn read_message_into(
    reader: &mut impl Read,
    max: u32,
    buf: &mut Vec<u8>,
) -> Result<bool, NetError> {
    buf.clear();
    let mut prefix = [0u8; 4];
    let (first, rest) = prefix.split_at_mut(1);
    // The first byte distinguishes a clean close from a truncated message
    // (read_exact cannot: it maps both to UnexpectedEof). Retry EINTR like
    // read_exact does, so a signal landing on an idle connection does not
    // tear it down.
    loop {
        match reader.read(first) {
            Ok(0) => return Ok(false),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    reader.read_exact(rest)?;
    let len = u32::from_be_bytes(prefix);
    if len == 0 {
        return Err(NetError::Decode(mbdr_core::DecodeError::Truncated {
            needed: 1,
            available: 0,
        }));
    }
    if len > max {
        return Err(NetError::Oversized { len, max });
    }
    buf.resize(len as usize, 0);
    reader.read_exact(buf)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn messages_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_message(&mut wire, b"hello").unwrap();
        write_message(&mut wire, &[0xFF; 3]).unwrap();
        let mut reader = Cursor::new(wire);
        assert_eq!(read_message(&mut reader, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_message(&mut reader, 1024).unwrap().unwrap(), vec![0xFF; 3]);
        assert!(read_message(&mut reader, 1024).unwrap().is_none(), "clean EOF at a boundary");
    }

    #[test]
    fn reusable_buffer_reads_match_and_clear_stale_contents() {
        let mut wire = Vec::new();
        write_message(&mut wire, b"hello").unwrap();
        write_message(&mut wire, b"yo").unwrap();
        let mut reader = Cursor::new(wire);
        let mut buf = b"stale-bytes".to_vec();
        assert!(read_message_into(&mut reader, 1024, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_message_into(&mut reader, 1024, &mut buf).unwrap());
        assert_eq!(buf, b"yo", "shrinking messages must not keep stale tail bytes");
        assert!(!read_message_into(&mut reader, 1024, &mut buf).unwrap());
        assert!(buf.is_empty(), "clean EOF clears the buffer");
    }

    #[test]
    fn oversized_prefix_is_refused_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        // No body follows — if the reader tried to allocate or read it, this
        // would error differently (or OOM); the cap must trip first.
        match read_message(&mut Cursor::new(wire), 1 << 20) {
            Err(NetError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1 << 20);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_and_truncated_messages_report_typed_errors() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&0u32.to_be_bytes());
        assert!(matches!(read_message(&mut Cursor::new(wire), 1024), Err(NetError::Decode(_))));
        // A prefix promising 10 bytes with only 3 behind it: EOF mid-message.
        let mut wire = Vec::new();
        wire.extend_from_slice(&10u32.to_be_bytes());
        wire.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(read_message(&mut Cursor::new(wire), 1024), Err(NetError::Io(_))));
        // A truncated prefix itself is also EOF mid-message.
        assert!(matches!(read_message(&mut Cursor::new(vec![0u8; 2]), 1024), Err(NetError::Io(_))));
    }
}
