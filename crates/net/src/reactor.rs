//! The readiness event loop: a fixed pool of reactor threads multiplexing
//! every connection over nonblocking sockets.
//!
//! ## Connection state machine
//!
//! Each accepted socket becomes a [`Conn`] owned by exactly one reactor
//! (round-robin at accept time). The reactor parses length-prefixed requests
//! *incrementally* out of a per-connection reusable read buffer — a request
//! split across ten TCP segments costs ten readable events and zero extra
//! allocations once the buffer has grown to the connection's largest
//! message. Queries are answered on the reactor thread (shard *read* locks
//! only); ingest frames are handed to the pinned ingest worker exactly as
//! before, so the per-source frame-ordering guarantee of the threaded server
//! survives: one reactor parses a connection's bytes in order, and one
//! worker applies its frames in order.
//!
//! ## Backpressure, twice
//!
//! *Inbound*: when a connection's pinned ingest queue is full, the reactor
//! does **not** block (that would stall every other connection it owns).
//! The frame is parked on the connection, read interest is withdrawn, and
//! the reactor retries on a short tick — TCP then pushes back on the
//! producer while everyone else keeps being served
//! ([`ServerStats`] counts each park as a `backpressure_stall`).
//!
//! *Outbound*: responses go through a bounded per-connection buffer flushed
//! on writability. A client that stops reading either overflows the bound
//! or sits write-blocked past the configured budget — both evict the
//! connection (`evicted_slow`) instead of pinning server memory or a
//! thread.
//!
//! ## Flush and EOF without blocking
//!
//! The flush barrier and the EOF-attribution rule ("a corrupt frame judged
//! after the peer closed is still a drop, not a clean close") both need to
//! wait for the ingest workers. The reactor never blocks: it flags the
//! connection's shared [`ConnProgress`], and the worker that completes the
//! last outstanding frame pushes a completion and wakes the reactor, which
//! then answers `FlushDone` (or finishes the close) and resumes parsing.

use crate::server::ServerConfig;
use crate::stats::ServerStats;
use crate::sys::{self, Event, Interest, Poller, SysFd, WakeReceiver, Waker};
use mbdr_core::wire::query::{encode_positions_into, encode_zone_events_into};
use mbdr_core::{PositionRecord, Request, Response, ServeError, ZoneEventRecord};
use mbdr_locserver::{
    LocationService, PositionReport, QueryScratch, ZoneEvent, ZoneEventKind, ZoneWatcher,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the guard when the lock is poisoned. Every
/// mutex in this module guards a plain queue or progress counter that stays
/// coherent if its holder panicked mid-update, so poisoning is deliberately
/// not propagated: one panicking worker must not cascade into tearing down
/// every serving thread that shares its inbox.
pub(crate) fn locked<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The token the reactor's own waker is registered under; connection tokens
/// are their conn ids, which count up from zero and can never collide.
const WAKER_TOKEN: u64 = u64::MAX;

/// Initial (and minimum-growth) size of a connection's read buffer. Idle
/// connections that never sent a byte hold no buffer at all.
const READ_CHUNK: usize = 4 * 1024;

/// Per-connection cap on bytes read in one wakeup: a blasting producer
/// yields to the reactor's other connections; level-triggered readiness
/// re-delivers the event for the remainder.
const READ_BUDGET: usize = 256 * 1024;

/// How often a reactor re-checks write-blocked connections against the
/// eviction budget (only armed while at least one connection is blocked).
const EVICT_TICK: Duration = Duration::from_millis(25);

/// How soon a reactor retries a parked ingest frame (only armed while at
/// least one connection is stalled on a full ingest queue).
const STALL_RETRY_TICK: Duration = Duration::from_millis(1);

/// Cross-thread mailbox of one reactor: the accept thread posts new
/// connections, ingest workers post completions, and both ring the waker.
pub(crate) struct ReactorShared {
    pub(crate) incoming: Mutex<Vec<NewConn>>,
    pub(crate) completions: Mutex<Vec<Completion>>,
    pub(crate) waker: Waker,
    pub(crate) shutdown: AtomicBool,
}

/// An accepted, already-nonblocking socket on its way to a reactor.
pub(crate) struct NewConn {
    pub(crate) stream: TcpStream,
    pub(crate) conn_id: u64,
}

/// "The ingest side of connection `conn_id` needs attention": its last
/// outstanding frame was applied (flush / deferred close can resolve) or a
/// frame payload failed to decode (the connection must be torn down).
pub(crate) struct Completion {
    pub(crate) conn_id: u64,
}

/// Ingest accounting shared between a connection's reactor and the pinned
/// ingest worker.
#[derive(Default)]
pub(crate) struct Progress {
    /// Frames handed to the worker queue.
    pub(crate) enqueued: u64,
    /// Frames the worker has finished with (applied or failed).
    pub(crate) applied_frames: u64,
    /// Updates those frames applied to registered objects.
    pub(crate) applied_updates: u64,
    /// A frame payload failed to decode; the connection is condemned.
    pub(crate) failed: bool,
    /// The reactor wants a [`Completion`] when the queue drains (a flush
    /// barrier or a deferred EOF attribution is waiting on it).
    pub(crate) wants_notify: bool,
}

/// The shared, mutex-guarded [`Progress`] of one connection.
#[derive(Default)]
pub(crate) struct ConnProgress {
    pub(crate) state: Mutex<Progress>,
}

/// One frame travelling from a reactor to an ingest worker.
pub(crate) struct IngestJob {
    pub(crate) frame_bytes: Vec<u8>,
    pub(crate) reactor: usize,
    pub(crate) conn_id: u64,
    pub(crate) progress: Arc<ConnProgress>,
}

/// Applies queued frames to the service. Per-connection order is preserved
/// because every connection is pinned to exactly one worker queue. Ends when
/// every sender (the reactors) is gone: shutdown.
pub(crate) fn ingest_worker(
    rx: &Receiver<IngestJob>,
    service: &LocationService,
    stats: &ServerStats,
    reactors: &[Arc<ReactorShared>],
) {
    for job in rx.iter() {
        let outcome = service.apply_frame_bytes(&job.frame_bytes);
        let mut notify = false;
        {
            let mut p = locked(&job.progress.state);
            p.applied_frames += 1;
            match outcome {
                Ok(applied) => {
                    p.applied_updates += applied as u64;
                    ServerStats::add(&stats.updates_applied, applied as u64);
                    if p.wants_notify && p.applied_frames == p.enqueued {
                        p.wants_notify = false;
                        notify = true;
                    }
                }
                Err(_) => {
                    // A corrupt frame payload: count it and condemn the
                    // connection; the service was never touched. The flag is
                    // set under the progress lock *before* the completion is
                    // posted, so the reactor always attributes the teardown
                    // to a drop, never to a clean close.
                    ServerStats::bump(&stats.frame_decode_errors);
                    p.failed = true;
                    p.wants_notify = false;
                    notify = true;
                }
            }
        }
        if notify {
            let shared = &reactors[job.reactor];
            locked(&shared.completions).push(Completion { conn_id: job.conn_id });
            shared.waker.wake();
        }
    }
}

/// Per-connection reusable query resources: the zone watcher, scratch and
/// record buffers. Everything is cleared and refilled per request, so a
/// connection's steady-state query path allocates nothing — buffers grow to
/// their high-water marks and stay there.
struct ConnState {
    watcher: ZoneWatcher,
    /// Wire zone id per watcher zone index (dense; `ZoneWatcher::add_zone`
    /// hands out consecutive indexes), so mapping a poll event back to the
    /// wire id is an array lookup — no string hashing on the poll path.
    zone_wire_ids: Vec<u32>,
    /// Outgoing response encoding buffer.
    write_buf: Vec<u8>,
    scratch: QueryScratch,
    reports: Vec<PositionReport>,
    records: Vec<PositionRecord>,
    zone_events: Vec<ZoneEvent>,
    event_records: Vec<ZoneEventRecord>,
}

impl ConnState {
    fn new() -> Self {
        ConnState {
            watcher: ZoneWatcher::new(),
            zone_wire_ids: Vec::new(),
            write_buf: Vec::new(),
            scratch: QueryScratch::default(),
            reports: Vec::new(),
            records: Vec::new(),
            zone_events: Vec::new(),
            event_records: Vec::new(),
        }
    }
}

/// The bounded outbound buffer: encoded responses waiting for writability.
#[derive(Default)]
struct OutBuf {
    buf: Vec<u8>,
    start: usize,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    fn push_message(&mut self, body: &[u8]) {
        self.buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(body);
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
    }
}

/// One connection's full state, owned by its reactor.
struct Conn {
    stream: TcpStream,
    fd: SysFd,
    conn_id: u64,
    /// The readiness interest currently registered with the poller.
    interest: Interest,
    /// Incremental read buffer: `read_buf[consumed..read_len]` is unparsed.
    read_buf: Vec<u8>,
    read_len: usize,
    consumed: usize,
    /// The peer closed its write half; close attribution may still be
    /// waiting on the ingest verdict of queued frames.
    peer_eof: bool,
    out: OutBuf,
    st: ConnState,
    progress: Arc<ConnProgress>,
    /// Which ingest worker queue this connection is pinned to.
    tx_index: usize,
    /// A flush barrier is waiting for the ingest queue to drain; parsing is
    /// paused so requests keep their on-the-wire order.
    flush_pending: bool,
    /// A frame the full ingest queue refused; parsing is paused and read
    /// interest withdrawn until it lands (inbound backpressure).
    stalled_frame: Option<Vec<u8>>,
    /// When the outbound buffer first failed to drain (slow-client clock).
    write_blocked_since: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, fd: SysFd, conn_id: u64, tx_index: usize) -> Conn {
        Conn {
            stream,
            fd,
            conn_id,
            interest: Interest::READ,
            read_buf: Vec::new(),
            read_len: 0,
            consumed: 0,
            peer_eof: false,
            out: OutBuf::default(),
            st: ConnState::new(),
            progress: Arc::new(ConnProgress::default()),
            tx_index,
            flush_pending: false,
            stalled_frame: None,
            write_blocked_since: None,
        }
    }

    /// Request parsing is suspended (flush barrier or ingest stall).
    fn paused(&self) -> bool {
        self.flush_pending || self.stalled_frame.is_some()
    }

    /// Moves the unparsed tail to the front of the read buffer.
    fn compact(&mut self) {
        if self.consumed == 0 {
            return;
        }
        if self.consumed == self.read_len {
            self.consumed = 0;
            self.read_len = 0;
            return;
        }
        self.read_buf.copy_within(self.consumed..self.read_len, 0);
        self.read_len -= self.consumed;
        self.consumed = 0;
    }
}

/// How a connection leaves its reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Alive,
    /// Clean close at a message boundary with all frames applied.
    Closed,
    /// Protocol violation, socket failure or condemned ingest.
    Dropped,
    /// Slow-client eviction: outbound bound overflowed or the write-stall
    /// budget expired.
    Evicted,
}

/// Everything a reactor thread owns. Constructed on the binding thread so
/// poller/waker failures surface from `NetServer::bind`, then moved into
/// the thread.
pub(crate) struct Reactor {
    pub(crate) index: usize,
    pub(crate) shared: Arc<ReactorShared>,
    pub(crate) service: Arc<LocationService>,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) worker_txs: Vec<SyncSender<IngestJob>>,
    pub(crate) config: ServerConfig,
    pub(crate) active_conns: Arc<AtomicUsize>,
    pub(crate) poller: Poller,
    pub(crate) wake_rx: WakeReceiver,
}

/// Builds a reactor's poller with its waker already registered.
pub(crate) fn new_poller(config: &ServerConfig) -> std::io::Result<(Poller, Waker, WakeReceiver)> {
    let (waker, wake_rx) = sys::waker_pair()?;
    let mut poller = Poller::new(config.backend)?;
    poller.register(wake_rx.fd(), WAKER_TOKEN, Interest::READ)?;
    Ok((poller, waker, wake_rx))
}

impl Reactor {
    pub(crate) fn run(self) {
        let mut rt = Runtime {
            index: self.index,
            shared: self.shared,
            service: self.service,
            stats: self.stats,
            worker_txs: self.worker_txs,
            config: self.config,
            active_conns: self.active_conns,
            poller: self.poller,
            wake_rx: self.wake_rx,
            conns: HashMap::new(),
            events: Vec::new(),
            stalled: Vec::new(),
            blocked_count: 0,
        };
        rt.run();
    }
}

struct Runtime {
    index: usize,
    shared: Arc<ReactorShared>,
    service: Arc<LocationService>,
    stats: Arc<ServerStats>,
    worker_txs: Vec<SyncSender<IngestJob>>,
    config: ServerConfig,
    active_conns: Arc<AtomicUsize>,
    poller: Poller,
    wake_rx: WakeReceiver,
    conns: HashMap<u64, Conn>,
    events: Vec<Event>,
    /// Conn ids with a parked ingest frame (may contain stale entries; they
    /// are filtered on retry).
    stalled: Vec<u64>,
    /// Connections currently write-blocked (arms the eviction tick).
    blocked_count: usize,
}

impl Runtime {
    fn run(&mut self) {
        loop {
            let timeout = self.wait_timeout();
            let mut events = std::mem::take(&mut self.events);
            if self.poller.wait(&mut events, timeout).is_err() {
                // A broken poller cannot serve anything: tear down.
                self.teardown_all();
                return;
            }
            let mut readiness = 0u64;
            let mut waker_rang = false;
            for ev in &events {
                if ev.token == WAKER_TOKEN {
                    waker_rang = true;
                    continue;
                }
                readiness += 1;
                self.dispatch(ev);
            }
            events.clear();
            self.events = events;
            if readiness > 0 {
                ServerStats::add(&self.stats.readiness_wakeups, readiness);
            }
            if waker_rang {
                self.wake_rx.drain();
            }
            // Serviced every iteration, not only on waker events: a wake
            // can race the flag-then-ring sequence of another thread.
            self.admit_incoming();
            self.service_completions();
            self.retry_stalled();
            self.evict_write_blocked();
            if self.shared.shutdown.load(Ordering::Acquire) {
                // One nonblocking sweep before teardown: events already
                // ready (typically peer FINs racing the shutdown signal)
                // still get their proper close attribution instead of
                // vanishing into the unattributed-shutdown teardown.
                let mut events = std::mem::take(&mut self.events);
                if self.poller.wait(&mut events, Some(Duration::ZERO)).is_ok() {
                    for ev in &events {
                        if ev.token != WAKER_TOKEN {
                            self.dispatch(ev);
                        }
                    }
                }
                self.service_completions();
                self.teardown_all();
                return;
            }
        }
    }

    fn wait_timeout(&self) -> Option<Duration> {
        if !self.stalled.is_empty() {
            Some(STALL_RETRY_TICK)
        } else if self.blocked_count > 0 {
            Some(EVICT_TICK)
        } else {
            None
        }
    }

    /// Handles one readiness event for one connection.
    fn dispatch(&mut self, ev: &Event) {
        let Some(mut conn) = self.conns.remove(&ev.token) else {
            return; // torn down earlier in this batch
        };
        let mut progress = false;
        let mut fate = Fate::Alive;
        if ev.writable && conn.out.pending() > 0 {
            fate = self.flush_out(&mut conn, &mut progress);
        }
        if fate == Fate::Alive && ev.readable {
            fate = self.on_readable(&mut conn, &mut progress);
        }
        if fate == Fate::Alive && !progress {
            ServerStats::bump(&self.stats.spurious_wakeups);
        }
        self.finish(conn, fate);
    }

    /// Reinserts a surviving connection or finalizes its teardown.
    fn finish(&mut self, conn: Conn, fate: Fate) {
        if fate == Fate::Alive {
            self.conns.insert(conn.conn_id, conn);
        } else {
            self.teardown(conn, fate);
        }
    }

    fn teardown(&mut self, mut conn: Conn, fate: Fate) {
        match fate {
            // `finish` never routes a live connection here; if a future
            // refactor breaks that, account it as a drop (debug builds
            // assert) rather than panicking the reactor thread.
            Fate::Alive | Fate::Dropped => {
                debug_assert!(fate == Fate::Dropped, "teardown of a live connection");
                ServerStats::bump(&self.stats.connections_dropped);
            }
            Fate::Closed => ServerStats::bump(&self.stats.connections_closed),
            Fate::Evicted => {
                ServerStats::bump(&self.stats.evicted_slow);
                ServerStats::bump(&self.stats.connections_dropped);
            }
        }
        if conn.write_blocked_since.take().is_some() {
            self.blocked_count -= 1;
        }
        self.poller.deregister(conn.fd);
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.active_conns.fetch_sub(1, Ordering::Relaxed);
    }

    fn teardown_all(&mut self) {
        for (_, conn) in self.conns.drain() {
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.active_conns.fetch_sub(1, Ordering::Relaxed);
        }
        // Shutdown teardowns are not attributed to any per-cause counter:
        // the server is going away, the connections did nothing wrong.
    }

    /// Registers newly accepted connections posted by the accept thread.
    fn admit_incoming(&mut self) {
        let newcomers = {
            let mut inbox = locked(&self.shared.incoming);
            if inbox.is_empty() {
                return;
            }
            std::mem::take(&mut *inbox)
        };
        for nc in newcomers {
            let fd = sys::stream_fd(&nc.stream);
            if self.poller.register(fd, nc.conn_id, Interest::READ).is_err() {
                // The reactor cannot watch this socket: the connection is
                // dead on arrival, counted on its own cause.
                ServerStats::bump(&self.stats.register_failures);
                ServerStats::bump(&self.stats.connections_dropped);
                let _ = nc.stream.shutdown(Shutdown::Both);
                self.active_conns.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let tx_index = (nc.conn_id % self.worker_txs.len() as u64) as usize;
            self.conns.insert(nc.conn_id, Conn::new(nc.stream, fd, nc.conn_id, tx_index));
        }
    }

    /// Resolves flush barriers, deferred EOF attributions and condemned
    /// connections the ingest workers reported.
    fn service_completions(&mut self) {
        let completions = {
            let mut queue = locked(&self.shared.completions);
            if queue.is_empty() {
                return;
            }
            std::mem::take(&mut *queue)
        };
        for c in completions {
            let Some(mut conn) = self.conns.remove(&c.conn_id) else {
                continue; // already gone; frames of dead conns still applied
            };
            let fate = self.on_ingest_progress(&mut conn);
            self.finish(conn, fate);
        }
    }

    fn on_ingest_progress(&mut self, conn: &mut Conn) -> Fate {
        let (failed, drained, frames, updates) = {
            let p = locked(&conn.progress.state);
            (p.failed, p.applied_frames == p.enqueued, p.enqueued, p.applied_updates)
        };
        if failed {
            // The worker counted the decode error; answer best-effort and
            // drop. Queued-but-unapplied frames of this connection still
            // drain through the worker (and are judged individually).
            return self.refuse(conn, ServeError::BadRequest);
        }
        if !drained {
            return Fate::Alive; // stale completion; a newer one will come
        }
        if conn.flush_pending {
            conn.flush_pending = false;
            let Ok(body) = (Response::FlushDone { frames, updates_applied: updates }).encode()
            else {
                return Fate::Dropped;
            };
            let fate = self.queue_response(conn, &body);
            if fate != Fate::Alive {
                return fate;
            }
            self.resume_read(conn);
            // Requests may have been buffered behind the barrier.
            return self.parse_and_handle(conn);
        }
        if conn.peer_eof && conn.read_len == conn.consumed {
            return Fate::Closed;
        }
        Fate::Alive
    }

    /// Retries parked ingest frames against their (hopefully drained)
    /// worker queues.
    fn retry_stalled(&mut self) {
        if self.stalled.is_empty() {
            return;
        }
        let ids = std::mem::take(&mut self.stalled);
        for id in ids {
            let Some(mut conn) = self.conns.remove(&id) else {
                continue;
            };
            let Some(bytes) = conn.stalled_frame.take() else {
                self.conns.insert(id, conn);
                continue;
            };
            let mut fate = self.enqueue_frame(&mut conn, bytes, false);
            if fate == Fate::Alive && conn.stalled_frame.is_none() {
                // The park resolved: resume reading and parsing.
                self.resume_read(&mut conn);
                fate = self.parse_and_handle(&mut conn);
            }
            self.finish(conn, fate);
        }
    }

    /// Evicts connections write-blocked past the configured budget.
    fn evict_write_blocked(&mut self) {
        if self.blocked_count == 0 {
            return;
        }
        let now = Instant::now();
        let budget = self.config.write_stall_budget;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.write_blocked_since.is_some_and(|since| now.duration_since(since) > budget)
            })
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            if let Some(conn) = self.conns.remove(&id) {
                self.teardown(conn, Fate::Evicted);
            }
        }
    }

    /// Drains readable bytes (bounded per wakeup) and parses what arrived.
    fn on_readable(&mut self, conn: &mut Conn, progress: &mut bool) -> Fate {
        if conn.paused() {
            // Read interest is withdrawn while paused; this is a residual
            // hangup/error event. EOF discovery waits for the resume.
            return Fate::Alive;
        }
        let mut total = 0usize;
        loop {
            if conn.read_len == conn.read_buf.len() {
                let grown = (conn.read_buf.len() * 2).max(READ_CHUNK);
                conn.read_buf.resize(grown, 0);
            }
            match conn.stream.read(&mut conn.read_buf[conn.read_len..]) {
                Ok(0) => {
                    conn.peer_eof = true;
                    *progress = true;
                    break;
                }
                Ok(n) => {
                    conn.read_len += n;
                    total += n;
                    *progress = true;
                    if total >= READ_BUDGET {
                        break; // fairness; level-triggering re-delivers
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Dropped,
            }
        }
        self.parse_and_handle(conn)
    }

    /// The request parser: consumes complete length-prefixed messages from
    /// the read buffer and handles each, stopping at a pause (flush barrier
    /// / ingest stall) or an incomplete message.
    fn parse_and_handle(&mut self, conn: &mut Conn) -> Fate {
        loop {
            if conn.paused() {
                break;
            }
            let avail = conn.read_len - conn.consumed;
            if avail < 4 {
                break;
            }
            let at = conn.consumed;
            let len = u32::from_be_bytes([
                conn.read_buf[at],
                conn.read_buf[at + 1],
                conn.read_buf[at + 2],
                conn.read_buf[at + 3],
            ]) as usize;
            if len == 0 {
                // No room for the kind byte: same typed refusal as the
                // blocking transport's zero-length case.
                ServerStats::bump(&self.stats.request_decode_errors);
                return self.refuse(conn, ServeError::BadRequest);
            }
            if len > self.config.max_message_bytes as usize {
                ServerStats::bump(&self.stats.oversized_messages);
                return self.refuse(conn, ServeError::Oversized);
            }
            if avail < 4 + len {
                // Incomplete: make room for the whole message so the next
                // readable event can finish it without reallocating twice.
                conn.compact();
                if conn.read_buf.len() < 4 + len {
                    conn.read_buf.resize(4 + len, 0);
                }
                break;
            }
            ServerStats::add(&self.stats.bytes_received, (4 + len) as u64);
            let body = &conn.read_buf[at + 4..at + 4 + len];
            let request = match Request::decode(body) {
                Ok(request) => request,
                Err(_) => {
                    ServerStats::bump(&self.stats.request_decode_errors);
                    return self.refuse(conn, ServeError::BadRequest);
                }
            };
            conn.consumed += 4 + len;
            let fate = self.handle_request(conn, request);
            if fate != Fate::Alive {
                return fate;
            }
        }
        conn.compact();
        self.end_of_input(conn)
    }

    /// EOF attribution once parsing has consumed everything it can.
    fn end_of_input(&mut self, conn: &mut Conn) -> Fate {
        if !conn.peer_eof || conn.paused() {
            return Fate::Alive;
        }
        if conn.read_len > conn.consumed {
            // EOF in the middle of a message: a truncation, not a close.
            return Fate::Dropped;
        }
        let mut p = locked(&conn.progress.state);
        if p.failed {
            return Fate::Dropped;
        }
        if p.applied_frames == p.enqueued {
            return Fate::Closed;
        }
        // Frames are still in flight: the close/drop verdict belongs to the
        // worker that judges the last of them (see module docs).
        p.wants_notify = true;
        Fate::Alive
    }

    fn handle_request(&mut self, conn: &mut Conn, request: Request) -> Fate {
        match request {
            Request::Ingest(frame_bytes) => {
                ServerStats::bump(&self.stats.frames_received);
                self.enqueue_frame(conn, frame_bytes, true)
            }
            Request::Rect { area, t } => {
                self.service.objects_in_rect_into(
                    &area,
                    t,
                    &mut conn.st.scratch,
                    &mut conn.st.reports,
                );
                to_records_into(&conn.st.reports, &mut conn.st.records);
                ServerStats::bump(&self.stats.queries_answered);
                self.respond_positions(conn)
            }
            Request::Nearest { from, t, k } => {
                self.service.nearest_objects_into(
                    &from,
                    t,
                    k as usize,
                    &mut conn.st.scratch,
                    &mut conn.st.reports,
                );
                to_records_into(&conn.st.reports, &mut conn.st.records);
                ServerStats::bump(&self.stats.queries_answered);
                self.respond_positions(conn)
            }
            Request::ZoneSubscribe { zone, area } => {
                // Fire-and-forget: requests on one connection are parsed in
                // order, so a subsequent poll is guaranteed to see the zone.
                let index = conn.st.watcher.add_zone(zone.to_string(), area);
                debug_assert_eq!(index, conn.st.zone_wire_ids.len());
                conn.st.zone_wire_ids.push(zone);
                Fate::Alive
            }
            Request::ZonePoll { t } => {
                conn.st.watcher.evaluate_into(&self.service, t, &mut conn.st.zone_events);
                conn.st.event_records.clear();
                let wire_ids = &conn.st.zone_wire_ids;
                conn.st.event_records.extend(conn.st.zone_events.iter().map(|e| ZoneEventRecord {
                    zone: wire_ids[e.zone_index],
                    object: e.object.0,
                    entered: matches!(e.kind, ZoneEventKind::Entered),
                    t,
                }));
                ServerStats::add(
                    &self.stats.zone_events_emitted,
                    conn.st.event_records.len() as u64,
                );
                ServerStats::bump(&self.stats.queries_answered);
                conn.st.write_buf.clear();
                let mut body = std::mem::take(&mut conn.st.write_buf);
                let encoded = encode_zone_events_into(&conn.st.event_records, &mut body);
                let fate =
                    if encoded.is_ok() { self.queue_response(conn, &body) } else { Fate::Dropped };
                conn.st.write_buf = body;
                fate
            }
            Request::Health => {
                let status = self.service.health_status();
                ServerStats::bump(&self.stats.queries_answered);
                conn.st.write_buf.clear();
                let mut body = std::mem::take(&mut conn.st.write_buf);
                let encoded = Response::Health(status).encode_into(&mut body);
                let fate =
                    if encoded.is_ok() { self.queue_response(conn, &body) } else { Fate::Dropped };
                conn.st.write_buf = body;
                fate
            }
            Request::Flush => self.handle_flush(conn),
        }
    }

    /// Encodes and queues the positions answer held in `conn.st.records`.
    fn respond_positions(&mut self, conn: &mut Conn) -> Fate {
        conn.st.write_buf.clear();
        let mut body = std::mem::take(&mut conn.st.write_buf);
        let encoded = encode_positions_into(&conn.st.records, &mut body);
        let fate = if encoded.is_ok() { self.queue_response(conn, &body) } else { Fate::Dropped };
        conn.st.write_buf = body;
        fate
    }

    fn handle_flush(&mut self, conn: &mut Conn) -> Fate {
        enum Verdict {
            Now(u64, u64),
            Wait,
            Failed,
        }
        let verdict = {
            let mut p = locked(&conn.progress.state);
            if p.failed {
                Verdict::Failed
            } else if p.applied_frames == p.enqueued {
                Verdict::Now(p.enqueued, p.applied_updates)
            } else {
                p.wants_notify = true;
                Verdict::Wait
            }
        };
        match verdict {
            Verdict::Failed => self.refuse(conn, ServeError::BadRequest),
            Verdict::Now(frames, updates_applied) => {
                let Ok(body) = (Response::FlushDone { frames, updates_applied }).encode() else {
                    return Fate::Dropped;
                };
                self.queue_response(conn, &body)
            }
            Verdict::Wait => {
                conn.flush_pending = true;
                self.pause_read(conn);
                Fate::Alive
            }
        }
    }

    /// Hands one ingest frame to the connection's pinned worker queue, or
    /// parks it and withdraws read interest when the queue is full (`fresh`
    /// distinguishes a first park from a retry for the stall counter).
    fn enqueue_frame(&mut self, conn: &mut Conn, frame_bytes: Vec<u8>, fresh: bool) -> Fate {
        {
            let mut p = locked(&conn.progress.state);
            p.enqueued += 1;
        }
        let job = IngestJob {
            frame_bytes,
            reactor: self.index,
            conn_id: conn.conn_id,
            progress: Arc::clone(&conn.progress),
        };
        match self.worker_txs[conn.tx_index].try_send(job) {
            Ok(()) => Fate::Alive,
            Err(TrySendError::Full(job)) => {
                {
                    let mut p = locked(&conn.progress.state);
                    p.enqueued -= 1;
                }
                conn.stalled_frame = Some(job.frame_bytes);
                self.stalled.push(conn.conn_id);
                if fresh {
                    ServerStats::bump(&self.stats.backpressure_stalls);
                }
                self.pause_read(conn);
                Fate::Alive
            }
            Err(TrySendError::Disconnected(_)) => Fate::Dropped,
        }
    }

    /// Appends one length-prefixed response to the bounded outbound buffer
    /// and attempts an immediate nonblocking write. Overflowing the bound
    /// is a slow-client eviction.
    fn queue_response(&mut self, conn: &mut Conn, body: &[u8]) -> Fate {
        // The bound judges the *backlog* the peer has failed to drain, not
        // the size of the response about to be queued: a prompt reader may
        // receive a response larger than the bound (it streams out in
        // write-readiness chunks), while a peer that left this much unread
        // is evicted before the next response makes it worse.
        if conn.out.pending() > self.config.max_outbound_bytes {
            return Fate::Evicted;
        }
        conn.out.push_message(body);
        let mut progress = false;
        self.flush_out(conn, &mut progress)
    }

    /// Best-effort typed error answer, then a drop. The write is a single
    /// nonblocking attempt: a peer that cannot take four bytes plus an
    /// error code was not going to read a retry either.
    fn refuse(&mut self, conn: &mut Conn, code: ServeError) -> Fate {
        if let Ok(body) = Response::Error(code).encode() {
            conn.out.push_message(&body);
            let mut progress = false;
            let _ = self.flush_out(conn, &mut progress);
        }
        Fate::Dropped
    }

    /// Writes as much pending output as the socket takes, then updates
    /// write interest and the slow-client clock.
    fn flush_out(&mut self, conn: &mut Conn, progress: &mut bool) -> Fate {
        while conn.out.pending() > 0 {
            match conn.stream.write(&conn.out.buf[conn.out.start..]) {
                Ok(0) => return Fate::Dropped,
                Ok(n) => {
                    ServerStats::add(&self.stats.bytes_sent, n as u64);
                    conn.out.consume(n);
                    *progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Dropped,
            }
        }
        if conn.out.pending() > 0 {
            if conn.write_blocked_since.is_none() {
                conn.write_blocked_since = Some(Instant::now());
                self.blocked_count += 1;
            }
            self.set_interest(conn, Interest { readable: conn.interest.readable, writable: true });
        } else {
            if conn.write_blocked_since.take().is_some() {
                self.blocked_count -= 1;
            }
            if conn.interest.writable {
                self.set_interest(
                    conn,
                    Interest { readable: conn.interest.readable, writable: false },
                );
            }
        }
        Fate::Alive
    }

    fn pause_read(&mut self, conn: &mut Conn) {
        self.set_interest(conn, Interest { readable: false, writable: conn.interest.writable });
    }

    fn resume_read(&mut self, conn: &mut Conn) {
        self.set_interest(conn, Interest { readable: true, writable: conn.interest.writable });
    }

    fn set_interest(&mut self, conn: &mut Conn, want: Interest) {
        if want == conn.interest {
            return;
        }
        if self.poller.reregister(conn.fd, conn.conn_id, want).is_ok() {
            conn.interest = want;
        }
        // On failure the old interest stays armed: worst case is extra
        // wakeups, which the spurious counter makes visible.
    }
}

/// Converts service reports to wire records in a reusable buffer.
fn to_records_into(reports: &[PositionReport], records: &mut Vec<PositionRecord>) {
    records.clear();
    records.extend(reports.iter().map(|r| PositionRecord {
        object: r.object.0,
        position: r.position,
        information_age: r.information_age,
    }));
}
