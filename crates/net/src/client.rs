//! The blocking client of the serving layer.
//!
//! One [`NetClient`] wraps one TCP connection. Ingest ([`NetClient::send_frame`])
//! is fire-and-forget; [`NetClient::flush`] is the write barrier that makes
//! previously sent frames visible to queries; the query methods are plain
//! request–response calls. A client is not thread-safe by design — open one
//! connection per producer or query thread, exactly like the workloads do.

use crate::error::NetError;
use crate::retry::RetryPolicy;
use crate::transport::{read_message_into, write_message, DEFAULT_MAX_MESSAGE_BYTES};
use mbdr_core::wire::query::decode_positions_into;
use mbdr_core::{Frame, HealthStatus, PositionRecord, Request, Response, ZoneEventRecord};
use mbdr_geo::{Aabb, Point};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Totals a flush barrier reports for its connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushSummary {
    /// Ingest frames the server received on this connection so far.
    pub frames: u64,
    /// Updates those frames applied to registered objects.
    pub updates_applied: u64,
}

/// Timeout and size configuration of a [`NetClient`].
///
/// The defaults block forever, matching plain [`NetClient::connect`];
/// workload drivers talking to a server that might wedge should set both
/// timeouts so a dead peer surfaces as an error instead of a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection (`None` blocks).
    pub connect_timeout: Option<Duration>,
    /// Bound on each response read (`None` blocks). A timeout surfaces as
    /// [`NetError::Io`] with a `WouldBlock`/`TimedOut` kind; the connection
    /// is unusable afterwards (a late response would desynchronize the
    /// stream) — call [`NetClient::reconnect_with_fresh_sequence`].
    pub read_timeout: Option<Duration>,
    /// Per-message size cap in both directions (0 means the 1 MiB default);
    /// see [`NetClient::set_max_message_bytes`].
    pub max_message_bytes: u32,
}

/// A blocking serving-layer connection.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: SocketAddr,
    config: ClientConfig,
    max_message_bytes: u32,
    bytes_sent: u64,
    /// Highest update sequence observed in frames sent on this client
    /// (across reconnects), so a reconnect can resume above everything the
    /// old connection may have applied.
    max_sequence_sent: u64,
    /// Reusable outgoing-message encode buffer (zero allocations per frame
    /// in steady state).
    send_buf: Vec<u8>,
    /// Reusable incoming-message body buffer.
    recv_buf: Vec<u8>,
}

impl NetClient {
    /// Connects to a serving layer with default (blocking) configuration.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NetClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a serving layer with explicit timeout configuration.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> std::io::Result<NetClient> {
        let mut last_err = None;
        let mut connected = None;
        for candidate in addr.to_socket_addrs()? {
            match dial(candidate, config) {
                Ok(stream) => {
                    connected = Some((stream, candidate));
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let Some((writer, peer)) = connected else {
            return Err(last_err.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses to connect to")
            }));
        };
        let reader = BufReader::new(writer.try_clone()?);
        let max_message_bytes = if config.max_message_bytes == 0 {
            DEFAULT_MAX_MESSAGE_BYTES
        } else {
            config.max_message_bytes
        };
        Ok(NetClient {
            reader,
            writer,
            peer,
            config,
            max_message_bytes,
            bytes_sent: 0,
            max_sequence_sent: 0,
            send_buf: Vec::new(),
            recv_buf: Vec::new(),
        })
    }

    /// Like [`NetClient::connect_with`], but retried under `policy`'s
    /// jittered exponential backoff until the connection is established or
    /// the policy's deadline expires (the last attempt's error is returned).
    /// Use this when the server may still be mid-recovery at client start.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
        policy: RetryPolicy,
    ) -> std::io::Result<NetClient> {
        policy.run(|| Self::connect_with(&addr, config))
    }

    /// Replaces a wedged or dead connection with a fresh one to the same
    /// server (same [`ClientConfig`]) and returns the sequence number the
    /// caller should stamp on its next update: strictly above every
    /// sequence sent on the old connection, so updates in flight when it
    /// wedged can never shadow the resumed stream under the tracker's
    /// staleness rule. Counters and reusable buffers survive the swap.
    pub fn reconnect_with_fresh_sequence(&mut self) -> std::io::Result<u64> {
        let writer = dial(self.peer, self.config)?;
        let reader = BufReader::new(writer.try_clone()?);
        self.writer = writer;
        self.reader = reader;
        self.recv_buf.clear();
        Ok(self.max_sequence_sent + 1)
    }

    /// [`NetClient::reconnect_with_fresh_sequence`] retried under `policy`
    /// (see [`NetClient::connect_with_retry`]): rides out a server restart
    /// or recovery window instead of failing on the first refused dial.
    pub fn reconnect_with_retry(&mut self, policy: RetryPolicy) -> std::io::Result<u64> {
        policy.run(|| self.reconnect_with_fresh_sequence())
    }

    /// The local address of the underlying socket.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.writer.local_addr()
    }

    /// Raises (or lowers) the per-message size cap, default 1 MiB, applied
    /// in both directions: outgoing messages above it fail fast with
    /// [`NetError::Oversized`] (the server would refuse them and drop the
    /// connection mid-stream), and a response above it is rejected instead
    /// of read. A rect answer carries 32 bytes per object, so clients
    /// querying fleets past ~32 k objects in one rectangle need a larger cap
    /// on both ends ([`crate::ServerConfig::max_message_bytes`] server-side).
    pub fn set_max_message_bytes(&mut self, max: u32) {
        self.max_message_bytes = max;
    }

    /// Bytes this client has put on the wire (length prefixes included).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Sends one update frame. Fire-and-forget: the server queues the frame
    /// for ingest and answers nothing — call [`NetClient::flush`] for the
    /// write barrier.
    pub fn send_frame(&mut self, frame: &Frame) -> Result<(), NetError> {
        for update in &frame.updates {
            self.max_sequence_sent = self.max_sequence_sent.max(update.sequence);
        }
        // Single-pass encode into the connection's reusable buffer: kind
        // byte + frame, no allocation per frame once the buffer is warm.
        let mut body = std::mem::take(&mut self.send_buf);
        body.clear();
        let encoded = Request::encode_ingest_into(frame, &mut body);
        let result = match encoded {
            Ok(()) => self.send_body(&body),
            Err(e) => Err(e.into()),
        };
        self.send_buf = body;
        result
    }

    /// The write barrier: returns once every frame previously sent on this
    /// connection has been applied to the service.
    pub fn flush(&mut self) -> Result<FlushSummary, NetError> {
        self.send(&Request::Flush)?;
        match self.receive()? {
            Response::FlushDone { frames, updates_applied } => {
                Ok(FlushSummary { frames, updates_applied })
            }
            Response::Error(code) => Err(NetError::Server(code)),
            _ => Err(NetError::UnexpectedResponse("flush-done")),
        }
    }

    /// "All objects inside `area` at time `t`" over the wire.
    pub fn objects_in_rect(
        &mut self,
        area: &Aabb,
        t: f64,
    ) -> Result<Vec<PositionRecord>, NetError> {
        self.positions(&Request::Rect { area: *area, t })
    }

    /// The reusable-buffer form of [`NetClient::objects_in_rect`]: decodes
    /// the answer into `out` (cleared first), so a query loop that holds one
    /// record buffer allocates nothing per response in steady state.
    pub fn objects_in_rect_into(
        &mut self,
        area: &Aabb,
        t: f64,
        out: &mut Vec<PositionRecord>,
    ) -> Result<(), NetError> {
        self.positions_into(&Request::Rect { area: *area, t }, out)
    }

    /// "The `k` objects nearest to `from` at time `t`" over the wire.
    pub fn nearest_objects(
        &mut self,
        from: &Point,
        t: f64,
        k: u16,
    ) -> Result<Vec<PositionRecord>, NetError> {
        self.positions(&Request::Nearest { from: *from, t, k })
    }

    /// The reusable-buffer form of [`NetClient::nearest_objects`] (see
    /// [`NetClient::objects_in_rect_into`]).
    pub fn nearest_objects_into(
        &mut self,
        from: &Point,
        t: f64,
        k: u16,
        out: &mut Vec<PositionRecord>,
    ) -> Result<(), NetError> {
        self.positions_into(&Request::Nearest { from: *from, t, k }, out)
    }

    /// Registers a zone on this connection's server-side watcher.
    /// Fire-and-forget: a later [`NetClient::poll_zones`] on this connection
    /// is guaranteed to see it (requests are processed in order).
    pub fn subscribe_zone(&mut self, zone: u32, area: &Aabb) -> Result<(), NetError> {
        self.send(&Request::ZoneSubscribe { zone, area: *area })
    }

    /// Evaluates this connection's zones at time `t`, returning the
    /// enter/leave transitions since the previous poll.
    pub fn poll_zones(&mut self, t: f64) -> Result<Vec<ZoneEventRecord>, NetError> {
        self.send(&Request::ZonePoll { t })?;
        match self.receive()? {
            Response::ZoneEvents(events) => Ok(events),
            Response::Error(code) => Err(NetError::Server(code)),
            _ => Err(NetError::UnexpectedResponse("zone events")),
        }
    }

    /// The server's durability health summary ([`mbdr_core::HealthStatus`]):
    /// Durable / Degraded / Recovered state, the count of frames applied
    /// without journaling while degraded, and the journal's recovery
    /// counters. Answered on the reactor like any query.
    pub fn health(&mut self) -> Result<HealthStatus, NetError> {
        self.send(&Request::Health)?;
        match self.receive()? {
            Response::Health(status) => Ok(status),
            Response::Error(code) => Err(NetError::Server(code)),
            _ => Err(NetError::UnexpectedResponse("health")),
        }
    }

    fn positions(&mut self, request: &Request) -> Result<Vec<PositionRecord>, NetError> {
        let mut records = Vec::new();
        self.positions_into(request, &mut records)?;
        Ok(records)
    }

    fn positions_into(
        &mut self,
        request: &Request,
        out: &mut Vec<PositionRecord>,
    ) -> Result<(), NetError> {
        self.send(request)?;
        if !read_message_into(&mut self.reader, self.max_message_bytes, &mut self.recv_buf)? {
            return Err(NetError::Closed);
        }
        match decode_positions_into(&self.recv_buf, out) {
            Ok(()) => Ok(()),
            // Not a positions response: fall back to the full decoder so
            // server errors surface as such, not as decode failures.
            Err(_) => match Response::decode(&self.recv_buf)? {
                Response::Positions(records) => {
                    *out = records;
                    Ok(())
                }
                Response::Error(code) => Err(NetError::Server(code)),
                _ => Err(NetError::UnexpectedResponse("positions")),
            },
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), NetError> {
        let mut body = std::mem::take(&mut self.send_buf);
        body.clear();
        request.encode_into(&mut body);
        let result = self.send_body(&body);
        self.send_buf = body;
        result
    }

    fn send_body(&mut self, body: &[u8]) -> Result<(), NetError> {
        // Fail fast on a message the peer would refuse anyway: sending it
        // would get the connection dropped mid-stream, losing everything
        // buffered behind it, with the error surfacing only on a later read.
        if body.len() as u64 > u64::from(self.max_message_bytes) {
            return Err(NetError::Oversized {
                len: body.len().min(u32::MAX as usize) as u32,
                max: self.max_message_bytes,
            });
        }
        self.bytes_sent += write_message(&mut self.writer, body)?;
        Ok(())
    }

    fn receive(&mut self) -> Result<Response, NetError> {
        if read_message_into(&mut self.reader, self.max_message_bytes, &mut self.recv_buf)? {
            Ok(Response::decode(&self.recv_buf)?)
        } else {
            Err(NetError::Closed)
        }
    }
}

/// Establishes one configured TCP connection.
fn dial(addr: SocketAddr, config: ClientConfig) -> std::io::Result<TcpStream> {
    let stream = match config.connect_timeout {
        Some(timeout) => TcpStream::connect_timeout(&addr, timeout)?,
        None => TcpStream::connect(addr)?,
    };
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(config.read_timeout)?;
    Ok(stream)
}
