//! The serving layer's error type.

use mbdr_core::{DecodeError, EncodeError, ServeError};

/// Anything that can go wrong on a serving-layer connection.
#[derive(Debug)]
pub enum NetError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// A received message failed to decode.
    Decode(DecodeError),
    /// A state could not be represented on the wire.
    Encode(EncodeError),
    /// A message's length prefix exceeded the size cap.
    Oversized {
        /// The length the prefix claimed.
        len: u32,
        /// The configured cap.
        max: u32,
    },
    /// The server rejected a request with a typed error code (it drops the
    /// connection after sending one of these).
    Server(ServeError),
    /// The peer answered with a response kind the request does not expect.
    UnexpectedResponse(&'static str),
    /// The peer closed the connection cleanly where a message was expected.
    Closed,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Decode(e) => write!(f, "message failed to decode: {e}"),
            NetError::Encode(e) => write!(f, "state not representable on the wire: {e}"),
            NetError::Oversized { len, max } => {
                write!(f, "message length {len} exceeds the {max}-byte cap")
            }
            NetError::Server(code) => write!(f, "server rejected the request: {code}"),
            NetError::UnexpectedResponse(expected) => {
                write!(f, "peer answered with an unexpected response (wanted {expected})")
            }
            NetError::Closed => write!(f, "connection closed by the peer"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Decode(e) => Some(e),
            NetError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<DecodeError> for NetError {
    fn from(e: DecodeError) -> Self {
        NetError::Decode(e)
    }
}

impl From<EncodeError> for NetError {
    fn from(e: EncodeError) -> Self {
        NetError::Encode(e)
    }
}
