//! Readiness multiplexing over the raw OS interfaces — the only place in
//! the workspace that contains `unsafe` code.
//!
//! ## The epoll / poll split
//!
//! The reactor needs one primitive: "block until any of these sockets is
//! readable or writable". The std library deliberately does not expose one,
//! so this module declares the two classic C entry points itself (the C
//! library is already linked by std — no new dependency):
//!
//! * **epoll** ([`epoll.rs`](self)) — Linux only. Registration is a syscall
//!   per change (`epoll_ctl`), waiting is O(ready) (`epoll_wait`), so
//!   thousands of mostly-idle connections cost nothing per wakeup. This is
//!   the backend the high-connection baseline gate measures.
//! * **poll** ([`poll.rs`](self)) — the portable POSIX fallback. The fd set
//!   is rebuilt and handed to the kernel on every call, so waiting is
//!   O(registered); correct everywhere, cheap only for small sets. It also
//!   keeps the reactor testable as a second implementation of the same
//!   contract on Linux.
//!
//! Everything unsafe is confined to the two backend files: the rest of the
//! crate sees only `Poller` (register / reregister / deregister / wait
//! with a token per fd), `Event` (token + readable/writable bits, with
//! error and hangup conditions folded into both so the read/write paths
//! discover them as EOF or `EPIPE`), and `Waker` (a nonblocking
//! `UnixStream` pair for cross-thread wakeups — no raw pipe syscalls
//! needed). On non-Unix targets the module compiles to stubs that fail at
//! `NetServer::bind` time with [`std::io::ErrorKind::Unsupported`]; the
//! blocking [`crate::NetClient`] keeps working everywhere.

#[cfg(target_os = "linux")]
mod epoll;
#[cfg(unix)]
mod poll;

/// Which readiness backend a [`crate::NetServer`]'s reactors use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollerBackend {
    /// epoll on Linux, poll elsewhere — the right choice outside tests.
    #[default]
    Auto,
    /// Force epoll; `NetServer::bind` fails off Linux.
    Epoll,
    /// Force the portable poll fallback (O(registered) per wait).
    Poll,
}

/// Readiness interest for one registered socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Wake when the socket has bytes (or EOF / an error) to read.
    pub readable: bool,
    /// Wake when the socket can accept more outbound bytes.
    pub writable: bool,
}

impl Interest {
    pub(crate) const READ: Interest = Interest { readable: true, writable: false };
}

/// One readiness event out of [`Poller::wait`]. Error and hangup conditions
/// set both bits so whichever path runs first observes the failure.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The socket is readable (data, EOF, error or peer hangup).
    pub readable: bool,
    /// The socket is writable (or in an error state a write will surface).
    pub writable: bool,
}

#[cfg(unix)]
pub(crate) use unix_impl::{stream_fd, Poller, SysFd, WakeReceiver, Waker};

#[cfg(not(unix))]
pub(crate) use stub_impl::{stream_fd, Poller, SysFd, WakeReceiver, Waker};

#[cfg(unix)]
mod unix_impl {
    use super::{Event, Interest, PollerBackend};
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::os::fd::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    /// The OS handle of a registered socket.
    pub(crate) type SysFd = RawFd;

    /// The fd behind a [`TcpStream`], for registration.
    pub(crate) fn stream_fd(stream: &TcpStream) -> SysFd {
        stream.as_raw_fd()
    }

    /// A readiness multiplexer: epoll on Linux, poll as the portable
    /// fallback (see the module docs for the contract and the split).
    pub(crate) enum Poller {
        #[cfg(target_os = "linux")]
        Epoll(super::epoll::EpollPoller),
        Poll(super::poll::PollPoller),
    }

    impl Poller {
        pub(crate) fn new(backend: PollerBackend) -> std::io::Result<Poller> {
            match backend {
                #[cfg(target_os = "linux")]
                PollerBackend::Auto | PollerBackend::Epoll => {
                    Ok(Poller::Epoll(super::epoll::EpollPoller::new()?))
                }
                #[cfg(not(target_os = "linux"))]
                PollerBackend::Epoll => Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "epoll is Linux-only; use PollerBackend::Auto or Poll",
                )),
                _ => Ok(Poller::Poll(super::poll::PollPoller::new())),
            }
        }

        pub(crate) fn register(
            &mut self,
            fd: SysFd,
            token: u64,
            interest: Interest,
        ) -> std::io::Result<()> {
            match self {
                #[cfg(target_os = "linux")]
                Poller::Epoll(p) => p.register(fd, token, interest),
                Poller::Poll(p) => p.register(fd, token, interest),
            }
        }

        pub(crate) fn reregister(
            &mut self,
            fd: SysFd,
            token: u64,
            interest: Interest,
        ) -> std::io::Result<()> {
            match self {
                #[cfg(target_os = "linux")]
                Poller::Epoll(p) => p.reregister(fd, token, interest),
                Poller::Poll(p) => p.reregister(fd, token, interest),
            }
        }

        pub(crate) fn deregister(&mut self, fd: SysFd) {
            match self {
                #[cfg(target_os = "linux")]
                Poller::Epoll(p) => p.deregister(fd),
                Poller::Poll(p) => p.deregister(fd),
            }
        }

        /// Blocks until readiness or `timeout`, appending into `events`
        /// (cleared first). A signal (`EINTR`) returns an empty set.
        pub(crate) fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> std::io::Result<()> {
            events.clear();
            match self {
                #[cfg(target_os = "linux")]
                Poller::Epoll(p) => p.wait(events, timeout),
                Poller::Poll(p) => p.wait(events, timeout),
            }
        }
    }

    /// Converts an optional timeout to the millisecond argument both
    /// backends take: `-1` blocks, sub-millisecond waits round *up* so a
    /// 200 µs retry tick cannot spin at 0 ms.
    pub(super) fn timeout_ms(timeout: Option<Duration>) -> i32 {
        match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis().min(i32::MAX as u128) as i32;
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms
                }
            }
        }
    }

    /// The sending half of a cross-thread wakeup channel: writing one byte
    /// makes the owning reactor's [`Poller::wait`] return. Nonblocking, so
    /// a full pipe (wakeup already pending) is success, not a stall.
    pub(crate) struct Waker {
        tx: UnixStream,
    }

    impl Waker {
        pub(crate) fn wake(&self) {
            // A byte already in flight wakes the reactor just as well, so
            // WouldBlock (and any teardown race) is deliberately ignored.
            let _ = (&self.tx).write(&[1u8]);
        }
    }

    /// The receiving half, registered with the reactor's poller under the
    /// waker token.
    pub(crate) struct WakeReceiver {
        rx: UnixStream,
    }

    impl WakeReceiver {
        pub(crate) fn fd(&self) -> SysFd {
            self.rx.as_raw_fd()
        }

        /// Swallows every pending wakeup byte (level-triggered pollers
        /// would otherwise report the waker readable forever).
        pub(crate) fn drain(&self) {
            let mut sink = [0u8; 64];
            while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    /// A connected nonblocking wakeup pair.
    pub(crate) fn waker_pair() -> std::io::Result<(Waker, WakeReceiver)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx }, WakeReceiver { rx }))
    }
}

#[cfg(unix)]
pub(crate) use unix_impl::waker_pair;

#[cfg(not(unix))]
pub(crate) use stub_impl::waker_pair;

#[cfg(not(unix))]
mod stub_impl {
    use super::{Event, Interest, PollerBackend};
    use std::net::TcpStream;
    use std::time::Duration;

    pub(crate) type SysFd = i32;

    pub(crate) fn stream_fd(_stream: &TcpStream) -> SysFd {
        -1
    }

    fn unsupported() -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "the mbdr-net reactor requires a Unix readiness backend (epoll or poll)",
        )
    }

    /// Readiness is unsupported off Unix: construction fails, so
    /// `NetServer::bind` reports `Unsupported` instead of limping.
    pub(crate) struct Poller;

    impl Poller {
        pub(crate) fn new(_backend: PollerBackend) -> std::io::Result<Poller> {
            Err(unsupported())
        }

        pub(crate) fn register(
            &mut self,
            _fd: SysFd,
            _token: u64,
            _interest: Interest,
        ) -> std::io::Result<()> {
            Err(unsupported())
        }

        pub(crate) fn reregister(
            &mut self,
            _fd: SysFd,
            _token: u64,
            _interest: Interest,
        ) -> std::io::Result<()> {
            Err(unsupported())
        }

        pub(crate) fn deregister(&mut self, _fd: SysFd) {}

        pub(crate) fn wait(
            &mut self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> std::io::Result<()> {
            Err(unsupported())
        }
    }

    pub(crate) struct Waker;

    impl Waker {
        pub(crate) fn wake(&self) {}
    }

    pub(crate) struct WakeReceiver;

    impl WakeReceiver {
        pub(crate) fn fd(&self) -> SysFd {
            -1
        }

        pub(crate) fn drain(&self) {}
    }

    pub(crate) fn waker_pair() -> std::io::Result<(Waker, WakeReceiver)> {
        Err(unsupported())
    }
}
