//! The Linux epoll backend: raw-syscall wrappers around `epoll_create1` /
//! `epoll_ctl` / `epoll_wait`, declared against the C library std already
//! links. Level-triggered (the reactor re-arms nothing), O(ready) per wait.

use super::unix_impl::timeout_ms;
use super::{Event, Interest};
use std::ffi::c_int;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`. The kernel ABI packs it on x86-64 (12 bytes); on
/// every other architecture it is laid out naturally.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
}

fn interest_bits(interest: Interest) -> u32 {
    // EPOLLRDHUP is always armed: a peer half-close must wake the reactor
    // even when read interest is (temporarily) withdrawn for backpressure,
    // or a closed connection could linger until its next event.
    let mut bits = EPOLLRDHUP;
    if interest.readable {
        bits |= EPOLLIN;
    }
    if interest.writable {
        bits |= EPOLLOUT;
    }
    bits
}

/// One epoll instance plus its reusable kernel-facing event buffer.
pub(crate) struct EpollPoller {
    epfd: OwnedFd,
    buf: Vec<EpollEvent>,
}

impl EpollPoller {
    pub(crate) fn new() -> std::io::Result<EpollPoller> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is an
        // error, otherwise the fd is owned here (and closed by OwnedFd).
        #[allow(unsafe_code)]
        let raw = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if raw < 0 {
            return Err(std::io::Error::last_os_error());
        }
        // SAFETY: `raw` was just returned by the kernel and is owned by
        // nothing else.
        #[allow(unsafe_code)]
        let epfd = unsafe { OwnedFd::from_raw_fd(raw) };
        Ok(EpollPoller { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; 1024] })
    }

    fn ctl(&mut self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> std::io::Result<()> {
        let mut ev = EpollEvent { events: interest_bits(interest), data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. DEL ignores the event pointer entirely.
        #[allow(unsafe_code)]
        let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    pub(crate) fn register(
        &mut self,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    pub(crate) fn reregister(
        &mut self,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    pub(crate) fn deregister(&mut self, fd: RawFd) {
        // Best-effort: the fd may already be closed, which deregisters it
        // kernel-side anyway.
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, Interest { readable: false, writable: false });
    }

    pub(crate) fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> std::io::Result<()> {
        // SAFETY: the buffer pointer/len pair is valid for the whole call;
        // the kernel writes at most `maxevents` entries.
        #[allow(unsafe_code)]
        let rc = unsafe {
            epoll_wait(
                self.epfd.as_raw_fd(),
                self.buf.as_mut_ptr(),
                self.buf.len() as c_int,
                timeout_ms(timeout),
            )
        };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            return if err.kind() == std::io::ErrorKind::Interrupted {
                Ok(()) // a signal: report no events, the reactor re-waits
            } else {
                Err(err)
            };
        }
        for raw in &self.buf[..rc as usize] {
            let bits = raw.events; // copy out of the (packed) struct
            let failed = bits & (EPOLLERR | EPOLLHUP) != 0;
            events.push(Event {
                token: raw.data,
                readable: failed || bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: failed || bits & EPOLLOUT != 0,
            });
        }
        Ok(())
    }
}
