//! The portable POSIX `poll(2)` backend: the fd set lives in user space and
//! is handed to the kernel whole on every wait, so the cost is O(registered)
//! per call — correct everywhere, cheap only for small sets. Doubles as the
//! second implementation of the `Poller` contract for tests on Linux.

use super::unix_impl::timeout_ms;
use super::{Event, Interest};
use std::ffi::{c_int, c_short};
use std::os::fd::RawFd;
use std::time::Duration;

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;
const POLLNVAL: c_short = 0x020;

/// `struct pollfd`, identical across the Unixes.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

// POSIX leaves nfds_t to the platform: unsigned long on Linux/glibc,
// unsigned int on the BSDs and macOS.
#[cfg(target_os = "linux")]
type NFds = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type NFds = std::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
}

struct Registration {
    fd: RawFd,
    token: u64,
    interest: Interest,
}

/// The user-space fd registry plus a reusable `pollfd` scratch array.
pub(crate) struct PollPoller {
    regs: Vec<Registration>,
    scratch: Vec<PollFd>,
}

impl PollPoller {
    pub(crate) fn new() -> PollPoller {
        PollPoller { regs: Vec::new(), scratch: Vec::new() }
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.regs.iter().position(|r| r.fd == fd)
    }

    pub(crate) fn register(
        &mut self,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> std::io::Result<()> {
        if self.position(fd).is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.regs.push(Registration { fd, token, interest });
        Ok(())
    }

    pub(crate) fn reregister(
        &mut self,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> std::io::Result<()> {
        match self.position(fd) {
            Some(i) => {
                self.regs[i].token = token;
                self.regs[i].interest = interest;
                Ok(())
            }
            None => Err(std::io::Error::new(std::io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    pub(crate) fn deregister(&mut self, fd: RawFd) {
        if let Some(i) = self.position(fd) {
            self.regs.swap_remove(i);
        }
    }

    pub(crate) fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> std::io::Result<()> {
        self.scratch.clear();
        for reg in &self.regs {
            let mut bits: c_short = 0;
            if reg.interest.readable {
                bits |= POLLIN;
            }
            if reg.interest.writable {
                bits |= POLLOUT;
            }
            self.scratch.push(PollFd { fd: reg.fd, events: bits, revents: 0 });
        }
        // SAFETY: the scratch pointer/len pair is valid for the whole call;
        // the kernel only fills `revents` in place.
        #[allow(unsafe_code)]
        let rc = unsafe {
            poll(self.scratch.as_mut_ptr(), self.scratch.len() as NFds, timeout_ms(timeout))
        };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            return if err.kind() == std::io::ErrorKind::Interrupted {
                Ok(()) // a signal: report no events, the reactor re-waits
            } else {
                Err(err)
            };
        }
        for (slot, reg) in self.scratch.iter().zip(&self.regs) {
            let bits = slot.revents;
            if bits == 0 {
                continue;
            }
            let failed = bits & (POLLERR | POLLHUP | POLLNVAL) != 0;
            events.push(Event {
                token: reg.token,
                readable: failed || bits & POLLIN != 0,
                writable: failed || bits & POLLOUT != 0,
            });
        }
        Ok(())
    }
}
