//! Observable counters of a running [`crate::NetServer`].
//!
//! The same discipline as the simulator's `LinkStats`: every event on the
//! serving path is tallied per cause, so tests (and operators) can assert
//! exactly what a connection did — how many frames arrived, how many updates
//! they applied, and why a connection ended (clean close vs. protocol
//! violation).

use mbdr_journal::JournalStatsSnapshot;
use mbdr_locserver::{DurabilityStatsSnapshot, RecoveryReport};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters the server threads bump as they work.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_closed: AtomicU64,
    pub(crate) connections_dropped: AtomicU64,
    pub(crate) frames_received: AtomicU64,
    pub(crate) updates_applied: AtomicU64,
    pub(crate) frame_decode_errors: AtomicU64,
    pub(crate) request_decode_errors: AtomicU64,
    pub(crate) oversized_messages: AtomicU64,
    pub(crate) queries_answered: AtomicU64,
    pub(crate) zone_events_emitted: AtomicU64,
    pub(crate) bytes_received: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) evicted_slow: AtomicU64,
    pub(crate) backpressure_stalls: AtomicU64,
    pub(crate) readiness_wakeups: AtomicU64,
    pub(crate) spurious_wakeups: AtomicU64,
    pub(crate) register_failures: AtomicU64,
}

impl ServerStats {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        Self::add(counter, 1);
    }

    /// A consistent-enough copy of the counters (each is read atomically;
    /// the set is not a single snapshot, which only matters mid-traffic).
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServerStatsSnapshot {
            connections_accepted: get(&self.connections_accepted),
            connections_closed: get(&self.connections_closed),
            connections_dropped: get(&self.connections_dropped),
            frames_received: get(&self.frames_received),
            updates_applied: get(&self.updates_applied),
            frame_decode_errors: get(&self.frame_decode_errors),
            request_decode_errors: get(&self.request_decode_errors),
            oversized_messages: get(&self.oversized_messages),
            queries_answered: get(&self.queries_answered),
            zone_events_emitted: get(&self.zone_events_emitted),
            bytes_received: get(&self.bytes_received),
            bytes_sent: get(&self.bytes_sent),
            evicted_slow: get(&self.evicted_slow),
            backpressure_stalls: get(&self.backpressure_stalls),
            readiness_wakeups: get(&self.readiness_wakeups),
            spurious_wakeups: get(&self.spurious_wakeups),
            register_failures: get(&self.register_failures),
            // The journal, durability and recovery counters live on the
            // journal / service / bind-time report, not here:
            // `NetServer::stats` overlays them.
            journal: JournalStatsSnapshot::default(),
            durability: DurabilityStatsSnapshot::default(),
            recovery: RecoveryReport::default(),
        }
    }
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStatsSnapshot {
    /// Connections the accept loop received (including ones later refused
    /// at admission or registration).
    pub connections_accepted: u64,
    /// Connections the peer closed cleanly at a message boundary.
    pub connections_closed: u64,
    /// Connections the server dropped (decode error, oversized message or
    /// socket failure).
    pub connections_dropped: u64,
    /// Ingest frames received (valid envelopes; payload validity is counted
    /// at apply time).
    pub frames_received: u64,
    /// Updates the ingest workers applied to registered objects.
    pub updates_applied: u64,
    /// Ingest frame payloads that failed to decode at apply time.
    pub frame_decode_errors: u64,
    /// Request envelopes that failed to decode.
    pub request_decode_errors: u64,
    /// Messages refused because their length prefix exceeded the cap.
    pub oversized_messages: u64,
    /// Rect / nearest / zone-poll queries answered (flush barriers are
    /// accounted per connection via `FlushDone`, not here, so this
    /// reconciles exactly with client-side query counts).
    pub queries_answered: u64,
    /// Zone enter/leave events sent to subscribers.
    pub zone_events_emitted: u64,
    /// Bytes read off accepted sockets (length prefixes included).
    pub bytes_received: u64,
    /// Bytes written to accepted sockets (length prefixes included).
    pub bytes_sent: u64,
    /// Connections evicted as slow clients: their bounded outbound buffer
    /// overflowed, or they sat write-blocked past the configured budget.
    /// Every eviction is also counted under `connections_dropped`.
    pub evicted_slow: u64,
    /// Times a connection's ingest frame was parked because its worker
    /// queue was full (read-interest backoff; one park per stall, retries
    /// are not recounted).
    pub backpressure_stalls: u64,
    /// Connection readiness events the reactors processed (waker events
    /// excluded). Scheduling-dependent: a diagnostic, not an invariant.
    pub readiness_wakeups: u64,
    /// Readiness events that produced no progress (no bytes moved, no state
    /// advanced). Scheduling-dependent: a diagnostic, not an invariant.
    pub spurious_wakeups: u64,
    /// Connections refused because they could not be registered: the
    /// admission cap was reached or the poller rejected the socket — the
    /// reactor-era descendant of "the reader thread failed to spawn".
    pub register_failures: u64,
    /// Write-ahead journal counters (all zero unless the server was started
    /// with [`crate::NetServer::bind_durable`]); see
    /// [`mbdr_journal::JournalStatsSnapshot`].
    pub journal: JournalStatsSnapshot,
    /// Durability state machine counters of the fronted service (state,
    /// degraded-window frame count, transition and probe counts); see
    /// [`mbdr_locserver::DurabilityStatsSnapshot`].
    pub durability: DurabilityStatsSnapshot,
    /// What crash recovery rebuilt at bind time (all zero unless the server
    /// was started with [`crate::NetServer::bind_durable`]); see
    /// [`mbdr_locserver::RecoveryReport`], satellite of the degraded-mode
    /// observability surface: `truncated_bytes` and the replay counters are
    /// reachable from one stats call instead of a held journal handle.
    pub recovery: RecoveryReport,
}
