//! The event-driven TCP server in front of a [`LocationService`].
//!
//! ## Thread model
//!
//! The pool is **fixed**: one accept thread, `reactor_workers` reactor
//! threads multiplexing every connection over nonblocking sockets (epoll on
//! Linux, `poll(2)` elsewhere — see [`crate::sys`]), and `ingest_workers`
//! threads applying frames to the service. Ten connections or ten thousand,
//! the thread count does not move; per-connection cost is a socket, a
//! registration and a state machine (see the private `reactor` module).
//!
//! Each connection is owned by one reactor (round-robin at accept) and
//! pinned to one ingest worker: the tracker's staleness rule rejects updates
//! that arrive out of order, so frames from one source must apply in the
//! order the socket delivered them — one parser and one applier per
//! connection preserve the per-source order TCP already paid for, while
//! different connections still ingest in parallel. Queries (rect / nearest /
//! zone poll) are answered on the reactor — they only take shard *read*
//! locks, so a slow consumer never blocks ingest.
//!
//! ## Backpressure and eviction
//!
//! Nothing in the server blocks on a client:
//!
//! * A full ingest queue parks the frame on its connection and withdraws
//!   read interest (counted as a `backpressure_stall`); TCP then pushes back
//!   on that producer while every other connection keeps being served.
//! * Responses go through a bounded per-connection outbound buffer drained
//!   on writability. A client that stops reading either overflows
//!   [`ServerConfig::max_outbound_bytes`] or stays write-blocked past
//!   [`ServerConfig::write_stall_budget`] — both evict it (`evicted_slow`).
//! * [`ServerConfig::max_connections`] bounds admission at accept time;
//!   refusals are counted under `register_failures`, the same counter a
//!   failed poller registration bumps (the reactor-era shape of the old
//!   "reader thread failed to spawn" path).
//!
//! ## The flush barrier
//!
//! Ingest is fire-and-forget (no per-frame ack — that would halve throughput
//! on high-latency uplinks), so a client that needs read-your-writes sends
//! [`mbdr_core::Request::Flush`]: the reactor pauses that connection's
//! parsing until every frame previously received on it has been applied,
//! then answers [`mbdr_core::Response::FlushDone`] with the connection's
//! frame and update totals. The wait is a flag, not a blocked thread.
//!
//! ## Hostile input
//!
//! Every failure is typed and counted (see [`crate::ServerStats`]): an
//! oversized length prefix or an undecodable request gets a best-effort
//! [`mbdr_core::Response::Error`] and the connection is dropped; a frame
//! payload that
//! fails to decode at apply time does the same via a worker completion. No
//! input panics a server thread, so the service's shard locks can never be
//! poisoned by traffic.

use crate::reactor::{
    ingest_worker, locked, new_poller, IngestJob, NewConn, Reactor, ReactorShared,
};
use crate::stats::{ServerStats, ServerStatsSnapshot};
use crate::sys::PollerBackend;
use crate::transport::DEFAULT_MAX_MESSAGE_BYTES;
use mbdr_journal::{Journal, JournalConfig};
use mbdr_locserver::{recover_and_attach, IndexStats, LocationService, RecoveryReport};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the durability re-probe thread re-checks a healthy service
/// (the check is one relaxed atomic load; reaction latency to a disk
/// incident is at most one tick).
const PROBE_IDLE_TICK: Duration = Duration::from_millis(250);

/// First retry delay after a failed re-probe; doubles per consecutive
/// failure up to [`PROBE_MAX_BACKOFF`].
const PROBE_MIN_BACKOFF: Duration = Duration::from_millis(10);

/// Cap on the re-probe backoff while the disk stays dead.
const PROBE_MAX_BACKOFF: Duration = Duration::from_secs(1);

/// Tuning knobs of a [`NetServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Reactor threads multiplexing the connections. Every connection is
    /// owned by exactly one reactor.
    pub reactor_workers: usize,
    /// Threads applying ingest frames to the service. Every connection is
    /// pinned to one worker so its frames apply in arrival order.
    pub ingest_workers: usize,
    /// Capacity of each worker's bounded ingest queue (frames). A full
    /// queue parks the producing connection (read-interest backoff) — the
    /// server's backpressure towards fast producers.
    pub ingest_queue: usize,
    /// Per-message size cap; larger length prefixes are refused unread.
    pub max_message_bytes: u32,
    /// Bound on a connection's *undrained* outbound backlog. A connection
    /// still holding more than this many buffered bytes when its next
    /// response is ready is evicted as a slow client (a single response may
    /// exceed the bound — a prompt reader drains it in readiness chunks).
    pub max_outbound_bytes: usize,
    /// How long a connection may sit write-blocked (buffered output, socket
    /// not accepting bytes) before it is evicted as a slow client.
    pub write_stall_budget: Duration,
    /// Admission cap: connections accepted while this many are already
    /// registered are refused at accept time (`register_failures`).
    pub max_connections: usize,
    /// Which readiness backend the reactors use.
    pub backend: PollerBackend,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            reactor_workers: 2,
            ingest_workers: 2,
            ingest_queue: 1024,
            max_message_bytes: DEFAULT_MAX_MESSAGE_BYTES,
            max_outbound_bytes: 256 * 1024,
            write_stall_budget: Duration::from_secs(5),
            max_connections: 16 * 1024,
            backend: PollerBackend::Auto,
        }
    }
}

/// A running TCP serving layer over one shared [`LocationService`].
///
/// Dropping the server shuts it down and joins every thread; call
/// [`NetServer::shutdown`] to do so explicitly and receive the final
/// counters.
pub struct NetServer {
    addr: SocketAddr,
    service: Arc<LocationService>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    reactor_shareds: Vec<Arc<ReactorShared>>,
    reactor_handles: Vec<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    pool_threads: usize,
    /// Present when the server was started via [`NetServer::bind_durable`].
    journal: Option<Arc<Journal>>,
    recovery: Option<RecoveryReport>,
    /// The durability re-probe thread of a durable server: signalled (flag
    /// under the mutex set to `true`, condvar notified) at shutdown.
    probe_signal: Arc<(Mutex<bool>, Condvar)>,
    probe_handle: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds the serving layer to `addr` (use port 0 for an ephemeral port)
    /// and starts the fixed thread pool: accept + reactors + ingest workers.
    pub fn bind(
        service: Arc<LocationService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let active_conns = Arc::new(AtomicUsize::new(0));
        let n_reactors = config.reactor_workers.max(1);
        let n_workers = config.ingest_workers.max(1);

        // Pollers and wakers are created here so a resource failure (fd
        // limit, unsupported platform) surfaces from bind, not from a
        // thread panic later.
        let mut pollers = Vec::with_capacity(n_reactors);
        let mut reactor_shareds = Vec::with_capacity(n_reactors);
        for _ in 0..n_reactors {
            let (poller, waker, wake_rx) = new_poller(&config)?;
            pollers.push((poller, wake_rx));
            reactor_shareds.push(Arc::new(ReactorShared {
                incoming: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
                waker,
                shutdown: AtomicBool::new(false),
            }));
        }

        // One bounded queue per ingest worker: connections are pinned, so
        // one source's frames are never raced by two workers.
        let mut worker_txs: Vec<SyncSender<IngestJob>> = Vec::with_capacity(n_workers);
        let mut worker_handles = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let (tx, rx) = std::sync::mpsc::sync_channel::<IngestJob>(config.ingest_queue.max(1));
            worker_txs.push(tx);
            let service = Arc::clone(&service);
            let stats = Arc::clone(&stats);
            let reactors = reactor_shareds.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("mbdr-net-ingest-{i}"))
                    .spawn(move || ingest_worker(&rx, &service, &stats, &reactors))?,
            );
        }

        let mut reactor_handles = Vec::with_capacity(n_reactors);
        for (index, (poller, wake_rx)) in pollers.into_iter().enumerate() {
            let reactor = Reactor {
                index,
                shared: Arc::clone(&reactor_shareds[index]),
                service: Arc::clone(&service),
                stats: Arc::clone(&stats),
                worker_txs: worker_txs.clone(),
                config,
                active_conns: Arc::clone(&active_conns),
                poller,
                wake_rx,
            };
            reactor_handles.push(
                std::thread::Builder::new()
                    .name(format!("mbdr-net-reactor-{index}"))
                    .spawn(move || reactor.run())?,
            );
        }
        // The reactors hold the only long-lived senders; drop ours so the
        // workers see disconnect once the reactors exit.
        drop(worker_txs);

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let reactors = reactor_shareds.clone();
            let active_conns = Arc::clone(&active_conns);
            std::thread::Builder::new().name("mbdr-net-accept".into()).spawn(move || {
                accept_loop(&listener, &shutdown, &stats, config, &reactors, &active_conns);
            })?
        };
        let mut server = NetServer {
            addr,
            service,
            stats,
            shutdown,
            accept_handle: Some(accept_handle),
            reactor_shareds,
            reactor_handles,
            worker_handles,
            pool_threads: 1 + n_reactors + n_workers,
            journal: None,
            recovery: None,
            probe_signal: Arc::new((Mutex::new(false), Condvar::new())),
            probe_handle: None,
        };
        // Any journaled service gets the durability re-probe thread — servers
        // started via `bind_durable`, and services whose caller attached a
        // journal (e.g. over a fault-injecting Vfs in tests) alike.
        if server.service.journal().is_some() {
            let probe_service = Arc::clone(&server.service);
            let probe_signal = Arc::clone(&server.probe_signal);
            server.probe_handle = Some(
                std::thread::Builder::new()
                    .name("mbdr-net-probe".into())
                    .spawn(move || probe_loop(&probe_service, &probe_signal))?,
            );
        }
        Ok(server)
    }

    /// Like [`NetServer::bind`], but with a durable write-ahead journal:
    /// before the listener starts, the journal at `journal.dir` is opened
    /// (repairing any torn tail), the newest snapshot is restored into
    /// `service`, the retained frame tail is replayed through the normal
    /// staleness-aware apply rules, and the journal is attached so every
    /// ingested frame is recorded from then on.
    ///
    /// Objects must be registered on `service` before this call — recovery
    /// restores tracker state only for registered objects (a snapshot cannot
    /// carry prediction functions). Inspect what was rebuilt via
    /// [`NetServer::recovery_report`].
    ///
    /// A durable server also runs one background **durability re-probe**
    /// thread (named `mbdr-net-probe`, in addition to the fixed serving pool
    /// counted by [`NetServer::pool_threads`]): when a failed journal append
    /// flips the service to the degraded regime, the thread retries
    /// [`LocationService::probe_durability`] under capped exponential backoff
    /// until the disk heals, then the service journals normally again — no
    /// operator action, no serving interruption.
    pub fn bind_durable(
        service: Arc<LocationService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        journal: JournalConfig,
    ) -> std::io::Result<NetServer> {
        let (journal, recovery) =
            recover_and_attach(&service, journal).map_err(std::io::Error::other)?;
        let mut server = Self::bind(service, addr, config)?;
        server.journal = Some(journal);
        server.recovery = Some(recovery);
        Ok(server)
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The location service the server fronts.
    pub fn service(&self) -> &Arc<LocationService> {
        &self.service
    }

    /// A copy of the serving counters. The fronted service's durability
    /// state machine is always overlaid into
    /// [`ServerStatsSnapshot::durability`]; on a durable server
    /// ([`NetServer::bind_durable`]) the journal's counters and the bind-time
    /// recovery report are additionally overlaid into
    /// [`ServerStatsSnapshot::journal`] / [`ServerStatsSnapshot::recovery`].
    pub fn stats(&self) -> ServerStatsSnapshot {
        let mut snapshot = self.stats.snapshot();
        snapshot.durability = self.service.durability_stats();
        if let Some(journal) = &self.journal {
            snapshot.journal = journal.stats();
        }
        if let Some(recovery) = &self.recovery {
            snapshot.recovery = *recovery;
        }
        snapshot
    }

    /// What crash recovery rebuilt at bind time (durable servers only).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The write-ahead journal, when the server was started with
    /// [`NetServer::bind_durable`].
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// The size of the fixed thread pool (accept + reactors + ingest
    /// workers). Connection count does not change it — that is the point;
    /// the soak tests assert against this number. A durable server's
    /// `mbdr-net-probe` thread is deliberately not counted: it belongs to
    /// the journal lifecycle, not the connection-serving pool whose
    /// fixedness the connection-scaling gate asserts.
    pub fn pool_threads(&self) -> usize {
        self.pool_threads
    }

    /// Spatial-index occupancy of the fronted service — gauges computed from
    /// the live shard indexes at call time (occupied cells, max cell
    /// occupancy), complementing the event counters in
    /// [`NetServer::stats`]: together they make hotspot skew observable on a
    /// serving deployment without a debugger.
    pub fn index_stats(&self) -> IndexStats {
        self.service.index_stats()
    }

    /// Stops accepting, tears down every connection, drains the workers and
    /// joins all threads. Returns the final counters.
    pub fn shutdown(mut self) -> ServerStatsSnapshot {
        self.shutdown_inner();
        self.stats.snapshot()
    }

    fn shutdown_inner(&mut self) {
        let Some(accept_handle) = self.accept_handle.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop: it checks the flag after every accept.
        let _ = TcpStream::connect(self.addr);
        let _ = accept_handle.join();
        for shared in &self.reactor_shareds {
            shared.shutdown.store(true, Ordering::Release);
            shared.waker.wake();
        }
        for handle in self.reactor_handles.drain(..) {
            let _ = handle.join();
        }
        // Every ingest sender lived inside a reactor; with the reactors
        // joined, the workers drain their queues and see the disconnect.
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        // With ingest quiesced, push any batched journal tail to disk so a
        // graceful shutdown loses nothing regardless of the fsync policy.
        if let Some(journal) = &self.journal {
            let _ = journal.flush();
        }
        if let Some(probe_handle) = self.probe_handle.take() {
            let (lock, cvar) = &*self.probe_signal;
            *locked(lock) = true;
            cvar.notify_all();
            let _ = probe_handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Body of a durable server's `mbdr-net-probe` thread: waits on the
/// shutdown condvar with a timeout, then runs one durability re-probe.
/// Healthy services are re-checked every [`PROBE_IDLE_TICK`] (one atomic
/// load); while the disk stays dead the wait doubles from
/// [`PROBE_MIN_BACKOFF`] to [`PROBE_MAX_BACKOFF`] so a dying device is not
/// hammered with fsyncs. The condvar makes shutdown immediate regardless of
/// the current backoff.
fn probe_loop(service: &LocationService, signal: &(Mutex<bool>, Condvar)) {
    let (lock, cvar) = signal;
    let mut wait = PROBE_IDLE_TICK;
    let mut fail_streak = 0u32;
    loop {
        let guard = locked(lock);
        let (guard, _timeout) =
            cvar.wait_timeout(guard, wait).unwrap_or_else(PoisonError::into_inner);
        if *guard {
            return;
        }
        drop(guard);
        if service.probe_durability() {
            fail_streak = 0;
            wait = PROBE_IDLE_TICK;
        } else {
            fail_streak = fail_streak.saturating_add(1);
            wait =
                PROBE_MIN_BACKOFF.saturating_mul(1u32 << fail_streak.min(7)).min(PROBE_MAX_BACKOFF);
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    stats: &Arc<ServerStats>,
    config: ServerConfig,
    reactors: &[Arc<ReactorShared>],
    active_conns: &Arc<AtomicUsize>,
) {
    let max_connections = config.max_connections.max(1);
    let mut next_conn_id = 0u64;
    for incoming in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = incoming else {
            continue;
        };
        ServerStats::bump(&stats.connections_accepted);
        // Admission cap: beyond it the connection cannot be registered, the
        // reactor-era shape of "the reader thread failed to spawn".
        if active_conns.load(Ordering::Relaxed) >= max_connections {
            ServerStats::bump(&stats.register_failures);
            ServerStats::bump(&stats.connections_dropped);
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
            // A socket that cannot be made nonblocking would wedge a
            // reactor; refuse it the same way.
            ServerStats::bump(&stats.register_failures);
            ServerStats::bump(&stats.connections_dropped);
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let conn_id = next_conn_id;
        next_conn_id += 1;
        active_conns.fetch_add(1, Ordering::Relaxed);
        let shared = &reactors[(conn_id % reactors.len() as u64) as usize];
        locked(&shared.incoming).push(NewConn { stream, conn_id });
        shared.waker.wake();
    }
}
