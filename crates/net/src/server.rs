//! The threaded TCP server in front of a [`LocationService`].
//!
//! ## Thread model
//!
//! One **accept** thread hands each connection to its own **reader** thread.
//! Readers decode length-prefixed [`Request`]s: queries (rect / nearest /
//! zone poll) are answered inline on the connection — they only take shard
//! *read* locks, so a slow client never blocks ingest — while ingest frames
//! are pushed onto a **bounded queue** drained by ingest workers calling
//! [`LocationService::apply_frame_bytes`]. The bound is the backpressure:
//! when producers outrun the store, their reader threads block on the queue
//! (and ultimately the senders block on TCP), instead of the server
//! buffering unboundedly.
//!
//! Each connection is pinned to one worker (round-robin at accept time, one
//! bounded queue per worker): the tracker's staleness rule rejects updates
//! that arrive out of order, so frames from one source must be applied in
//! the order the socket delivered them — two workers racing frames of the
//! same connection would drop legitimate updates. Pinning preserves the
//! per-source order TCP already paid for, while different connections still
//! ingest in parallel.
//!
//! ## The flush barrier
//!
//! Ingest is fire-and-forget (no per-frame ack — that would halve throughput
//! on high-latency uplinks), so a client that needs read-your-writes sends
//! [`Request::Flush`]: the reader waits until every frame previously received
//! on *this* connection has been applied, then answers
//! [`Response::FlushDone`] with the connection's frame and update totals.
//!
//! ## Hostile input
//!
//! Every failure is typed and counted (see [`crate::ServerStats`]): an
//! oversized length prefix or an undecodable request gets a best-effort
//! [`Response::Error`] and the connection is dropped; a frame payload that
//! fails to decode at apply time does the same from the worker side. No
//! input panics a server thread, so the service's shard locks can never be
//! poisoned by traffic.

use crate::error::NetError;
use crate::stats::{ServerStats, ServerStatsSnapshot};
use crate::transport::{read_message_into, write_message, DEFAULT_MAX_MESSAGE_BYTES};
use mbdr_core::wire::query::{encode_positions_into, encode_zone_events_into};
use mbdr_core::{PositionRecord, Request, Response, ServeError, ZoneEventRecord};
use mbdr_locserver::{
    IndexStats, LocationService, PositionReport, QueryScratch, ZoneEvent, ZoneEventKind,
    ZoneWatcher,
};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs of a [`NetServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Threads applying ingest frames to the service. Every connection is
    /// pinned to one worker so its frames apply in arrival order.
    pub ingest_workers: usize,
    /// Capacity of each worker's bounded ingest queue (frames). Readers
    /// block when their worker's queue is full — the server's backpressure
    /// towards fast producers.
    pub ingest_queue: usize,
    /// Per-message size cap; larger length prefixes are refused unread.
    pub max_message_bytes: u32,
    /// Socket write timeout for responses. A client that stops reading
    /// (deliberately or not) can fill its TCP receive window; the timeout
    /// bounds how long any server thread can stay stuck in a response write
    /// before the connection is dropped instead.
    pub write_timeout: std::time::Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            ingest_workers: 2,
            ingest_queue: 1024,
            max_message_bytes: DEFAULT_MAX_MESSAGE_BYTES,
            write_timeout: std::time::Duration::from_secs(30),
        }
    }
}

/// Per-connection ingest accounting, shared between the connection's reader
/// thread and the ingest workers.
#[derive(Default)]
struct Progress {
    /// Frames this connection has pushed onto the ingest queue.
    enqueued: u64,
    /// Frames the workers have finished with (applied or failed).
    applied_frames: u64,
    /// Updates those frames applied to registered objects.
    applied_updates: u64,
    /// Set when a frame payload failed to decode: the connection is being
    /// torn down and a pending flush must not wait for more progress.
    failed: bool,
}

/// State shared between a connection's reader thread and the ingest workers.
struct ConnShared {
    /// The write half, mutexed so reader-thread responses and worker-side
    /// error responses never interleave bytes.
    writer: Mutex<TcpStream>,
    /// A dedicated handle for tearing the socket down, so teardown never
    /// has to wait on the writer mutex (a reader can legitimately hold it
    /// for up to the write timeout).
    shutdown_handle: TcpStream,
    progress: Mutex<Progress>,
    done: Condvar,
}

impl ConnShared {
    fn teardown(&self) {
        let _ = self.shutdown_handle.shutdown(Shutdown::Both);
    }
}

/// One frame travelling from a connection reader to an ingest worker.
struct IngestJob {
    frame_bytes: Vec<u8>,
    conn: Arc<ConnShared>,
}

/// A running TCP serving layer over one shared [`LocationService`].
///
/// Dropping the server shuts it down and joins every thread; call
/// [`NetServer::shutdown`] to do so explicitly and receive the final
/// counters.
pub struct NetServer {
    addr: SocketAddr,
    service: Arc<LocationService>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    conn_streams: Arc<Mutex<HashMap<u64, TcpStream>>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Binds the serving layer to `addr` (use port 0 for an ephemeral port)
    /// and starts the accept and ingest-worker threads.
    pub fn bind(
        service: Arc<LocationService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        // One bounded queue per worker: connections are pinned round-robin,
        // so one source's frames are never raced by two workers.
        let mut worker_txs = Vec::new();
        let mut worker_handles = Vec::new();
        for i in 0..config.ingest_workers.max(1) {
            let (tx, rx) = std::sync::mpsc::sync_channel::<IngestJob>(config.ingest_queue.max(1));
            worker_txs.push(tx);
            let service = Arc::clone(&service);
            let stats = Arc::clone(&stats);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("mbdr-net-ingest-{i}"))
                    .spawn(move || ingest_worker(&rx, &service, &stats))?,
            );
        }
        let conn_streams = Arc::new(Mutex::new(HashMap::new()));
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let service = Arc::clone(&service);
            let stats = Arc::clone(&stats);
            let conn_streams = Arc::clone(&conn_streams);
            let conn_handles = Arc::clone(&conn_handles);
            std::thread::Builder::new().name("mbdr-net-accept".into()).spawn(move || {
                accept_loop(
                    &listener,
                    &shutdown,
                    &worker_txs,
                    &service,
                    &stats,
                    config,
                    &conn_streams,
                    &conn_handles,
                );
            })?
        };
        Ok(NetServer {
            addr,
            service,
            stats,
            shutdown,
            accept_handle: Some(accept_handle),
            worker_handles,
            conn_streams,
            conn_handles,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The location service the server fronts.
    pub fn service(&self) -> &Arc<LocationService> {
        &self.service
    }

    /// A copy of the serving counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Spatial-index occupancy of the fronted service — gauges computed from
    /// the live shard indexes at call time (occupied cells, max cell
    /// occupancy), complementing the event counters in
    /// [`NetServer::stats`]: together they make hotspot skew observable on a
    /// serving deployment without a debugger.
    pub fn index_stats(&self) -> IndexStats {
        self.service.index_stats()
    }

    /// Stops accepting, tears down every connection, drains the workers and
    /// joins all threads. Returns the final counters.
    pub fn shutdown(mut self) -> ServerStatsSnapshot {
        self.shutdown_inner();
        self.stats.snapshot()
    }

    fn shutdown_inner(&mut self) {
        let Some(accept_handle) = self.accept_handle.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop: it checks the flag after every accept.
        let _ = TcpStream::connect(self.addr);
        let _ = accept_handle.join();
        for (_, stream) in self.conn_streams.lock().expect("conn registry").drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handles: Vec<_> = self.conn_handles.lock().expect("conn handles").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        // Every sender is gone once the accept loop and all readers exited,
        // so the workers drain the queue and see the disconnect.
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    worker_txs: &[SyncSender<IngestJob>],
    service: &Arc<LocationService>,
    stats: &Arc<ServerStats>,
    config: ServerConfig,
    conn_streams: &Arc<Mutex<HashMap<u64, TcpStream>>>,
    conn_handles: &Mutex<Vec<JoinHandle<()>>>,
) {
    let mut next_conn_id = 0u64;
    for incoming in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = incoming else {
            continue;
        };
        ServerStats::bump(&stats.connections_accepted);
        let _ = stream.set_nodelay(true);
        // A client that stops reading must not pin server threads in
        // response writes forever (see ServerConfig::write_timeout).
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        let halves = (stream.try_clone(), stream.try_clone(), stream.try_clone());
        let (write_half, registry_half, shutdown_half) = match halves {
            (Ok(w), Ok(r), Ok(s)) => (w, r, s),
            _ => {
                ServerStats::bump(&stats.connections_dropped);
                continue;
            }
        };
        let conn_id = next_conn_id;
        next_conn_id += 1;
        conn_streams.lock().expect("conn registry").insert(conn_id, registry_half);
        let conn = Arc::new(ConnShared {
            writer: Mutex::new(write_half),
            shutdown_handle: shutdown_half,
            progress: Mutex::new(Progress::default()),
            done: Condvar::new(),
        });
        // Connections are pinned to workers round-robin (see module docs).
        let tx = worker_txs[conn_id as usize % worker_txs.len()].clone();
        let service = Arc::clone(service);
        let conn_stats = Arc::clone(stats);
        let registry = Arc::clone(conn_streams);
        let spawned = std::thread::Builder::new().name("mbdr-net-conn".into()).spawn(move || {
            serve_connection(stream, &conn, &tx, &service, &conn_stats, config.max_message_bytes);
            // Reap this connection's registry entry so a long-running server
            // with churning clients does not leak one fd per connection.
            registry.lock().expect("conn registry").remove(&conn_id);
        });
        let mut handles = conn_handles.lock().expect("conn handles");
        // Reap finished reader threads for the same reason (dropping a
        // finished JoinHandle merely detaches an already-dead thread).
        handles.retain(|h: &JoinHandle<()>| !h.is_finished());
        match spawned {
            Ok(handle) => handles.push(handle),
            Err(_) => {
                // The reader never ran, so nobody else will reap the
                // registry entry — drop it here or the fd leaks, which is
                // the worst outcome under the very thread exhaustion that
                // makes spawn fail.
                conn_streams.lock().expect("conn registry").remove(&conn_id);
                ServerStats::bump(&stats.connections_dropped);
            }
        }
    }
}

/// Per-connection reusable resources: read/write buffers, query scratch and
/// the zone watcher. Everything here is cleared and refilled per request, so
/// in steady state the query phase of a connection allocates nothing — the
/// buffers grow to their high-water marks and stay there.
struct ConnState {
    watcher: ZoneWatcher,
    /// Wire zone id per watcher zone index (dense; `ZoneWatcher::add_zone`
    /// hands out consecutive indexes), so mapping a poll event back to the
    /// wire id is an array lookup — no string hashing on the poll path.
    zone_wire_ids: Vec<u32>,
    /// Incoming message bodies (reused across reads).
    body: Vec<u8>,
    /// Outgoing response encoding buffer.
    write_buf: Vec<u8>,
    scratch: QueryScratch,
    reports: Vec<PositionReport>,
    records: Vec<PositionRecord>,
    zone_events: Vec<ZoneEvent>,
    event_records: Vec<ZoneEventRecord>,
}

impl ConnState {
    fn new() -> Self {
        ConnState {
            watcher: ZoneWatcher::new(),
            zone_wire_ids: Vec::new(),
            body: Vec::new(),
            write_buf: Vec::new(),
            scratch: QueryScratch::default(),
            reports: Vec::new(),
            records: Vec::new(),
            zone_events: Vec::new(),
            event_records: Vec::new(),
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    conn: &Arc<ConnShared>,
    tx: &SyncSender<IngestJob>,
    service: &LocationService,
    stats: &ServerStats,
    max_message_bytes: u32,
) {
    let mut reader = BufReader::new(stream);
    let mut st = ConnState::new();
    loop {
        match read_message_into(&mut reader, max_message_bytes, &mut st.body) {
            Ok(false) => {
                // A worker tearing the socket down on a bad frame surfaces
                // here as EOF too: the failure flag tells the two apart.
                // Frames can still be in this connection's queue (a client
                // may send a corrupt frame and close immediately), so wait
                // for them to drain before attributing the teardown —
                // otherwise the race between this EOF and the worker's
                // verdict would miscount a drop as a clean close.
                let (_, _, failed) = wait_for_drain(conn);
                if failed {
                    ServerStats::bump(&stats.connections_dropped);
                } else {
                    ServerStats::bump(&stats.connections_closed);
                }
                return;
            }
            Ok(true) => {
                ServerStats::add(&stats.bytes_received, 4 + st.body.len() as u64);
                // Decoding from the reused buffer copies only an ingest
                // payload (which must outlive the buffer on the worker
                // queue); query requests are parsed into stack values.
                let request = match Request::decode(&st.body) {
                    Ok(request) => request,
                    Err(_) => {
                        ServerStats::bump(&stats.request_decode_errors);
                        let _ = respond(conn, stats, &Response::Error(ServeError::BadRequest));
                        return drop_connection(conn, stats);
                    }
                };
                if !handle_request(request, conn, tx, service, stats, &mut st) {
                    return;
                }
            }
            Err(NetError::Oversized { .. }) => {
                ServerStats::bump(&stats.oversized_messages);
                let _ = respond(conn, stats, &Response::Error(ServeError::Oversized));
                return drop_connection(conn, stats);
            }
            Err(NetError::Decode(_)) => {
                ServerStats::bump(&stats.request_decode_errors);
                let _ = respond(conn, stats, &Response::Error(ServeError::BadRequest));
                return drop_connection(conn, stats);
            }
            Err(_) => return drop_connection(conn, stats),
        }
    }
}

/// Handles one decoded request; returns `false` when the connection must end.
fn handle_request(
    request: Request,
    conn: &Arc<ConnShared>,
    tx: &SyncSender<IngestJob>,
    service: &LocationService,
    stats: &ServerStats,
    st: &mut ConnState,
) -> bool {
    match request {
        Request::Ingest(frame_bytes) => {
            ServerStats::bump(&stats.frames_received);
            conn.progress.lock().expect("progress lock").enqueued += 1;
            if tx.send(IngestJob { frame_bytes, conn: Arc::clone(conn) }).is_err() {
                drop_connection(conn, stats);
                return false;
            }
        }
        Request::Rect { area, t } => {
            service.objects_in_rect_into(&area, t, &mut st.scratch, &mut st.reports);
            to_records_into(&st.reports, &mut st.records);
            ServerStats::bump(&stats.queries_answered);
            st.write_buf.clear();
            if encode_positions_into(&st.records, &mut st.write_buf).is_err()
                || respond_encoded(conn, stats, &st.write_buf).is_err()
            {
                drop_connection(conn, stats);
                return false;
            }
        }
        Request::Nearest { from, t, k } => {
            service.nearest_objects_into(&from, t, k as usize, &mut st.scratch, &mut st.reports);
            to_records_into(&st.reports, &mut st.records);
            ServerStats::bump(&stats.queries_answered);
            st.write_buf.clear();
            if encode_positions_into(&st.records, &mut st.write_buf).is_err()
                || respond_encoded(conn, stats, &st.write_buf).is_err()
            {
                drop_connection(conn, stats);
                return false;
            }
        }
        Request::ZoneSubscribe { zone, area } => {
            // Fire-and-forget: requests on one connection are processed in
            // order, so a subsequent poll is guaranteed to see the zone.
            // The zone name is interned once here; the poll path maps the
            // watcher's dense zone index back to the wire id with an array
            // lookup instead of parsing (or hashing) names per event.
            let index = st.watcher.add_zone(zone.to_string(), area);
            debug_assert_eq!(index, st.zone_wire_ids.len());
            st.zone_wire_ids.push(zone);
        }
        Request::ZonePoll { t } => {
            st.watcher.evaluate_into(service, t, &mut st.zone_events);
            st.event_records.clear();
            st.event_records.extend(st.zone_events.iter().map(|e| ZoneEventRecord {
                zone: st.zone_wire_ids[e.zone_index],
                object: e.object.0,
                entered: matches!(e.kind, ZoneEventKind::Entered),
                t,
            }));
            ServerStats::add(&stats.zone_events_emitted, st.event_records.len() as u64);
            ServerStats::bump(&stats.queries_answered);
            st.write_buf.clear();
            if encode_zone_events_into(&st.event_records, &mut st.write_buf).is_err()
                || respond_encoded(conn, stats, &st.write_buf).is_err()
            {
                drop_connection(conn, stats);
                return false;
            }
        }
        Request::Flush => {
            let (frames, updates_applied, failed) = wait_for_drain(conn);
            if failed {
                // The worker already sent the error and shut the socket down.
                drop_connection(conn, stats);
                return false;
            }
            if respond(conn, stats, &Response::FlushDone { frames, updates_applied }).is_err() {
                drop_connection(conn, stats);
                return false;
            }
        }
    }
    true
}

/// Blocks until every frame enqueued on this connection has been processed
/// (or its teardown began). Returns `(frames, updates_applied, failed)`.
fn wait_for_drain(conn: &ConnShared) -> (u64, u64, bool) {
    let mut progress = conn.progress.lock().expect("progress lock");
    while progress.applied_frames < progress.enqueued && !progress.failed {
        progress = conn.done.wait(progress).expect("progress lock");
    }
    (progress.enqueued, progress.applied_updates, progress.failed)
}

/// Converts service reports to wire records in a reusable buffer (cleared
/// first) — the query paths' counterpart of the old allocating `to_records`.
fn to_records_into(reports: &[PositionReport], records: &mut Vec<PositionRecord>) {
    records.clear();
    records.extend(reports.iter().map(|r| PositionRecord {
        object: r.object.0,
        position: r.position,
        information_age: r.information_age,
    }));
}

/// Writes a pre-encoded response body — the zero-allocation send path the
/// query handlers use with the connection's reusable write buffer.
fn respond_encoded(conn: &ConnShared, stats: &ServerStats, body: &[u8]) -> Result<(), NetError> {
    let mut writer = conn.writer.lock().expect("writer lock");
    let sent = write_message(&mut *writer, body)?;
    ServerStats::add(&stats.bytes_sent, sent);
    Ok(())
}

/// Encodes and writes a response, allocating a fresh buffer — fine for the
/// cold paths (errors, flush barriers) that keep no per-connection state.
fn respond(conn: &ConnShared, stats: &ServerStats, response: &Response) -> Result<(), NetError> {
    let body = response.encode()?;
    respond_encoded(conn, stats, &body)
}

fn drop_connection(conn: &ConnShared, stats: &ServerStats) {
    ServerStats::bump(&stats.connections_dropped);
    conn.teardown();
}

fn ingest_worker(rx: &Receiver<IngestJob>, service: &LocationService, stats: &ServerStats) {
    // Ends when every sender to this worker's queue is gone: shutdown.
    for job in rx.iter() {
        match service.apply_frame_bytes(&job.frame_bytes) {
            Ok(applied) => {
                ServerStats::add(&stats.updates_applied, applied as u64);
                let mut progress = job.conn.progress.lock().expect("progress lock");
                progress.applied_frames += 1;
                progress.applied_updates += applied as u64;
                drop(progress);
                job.conn.done.notify_all();
            }
            Err(_) => {
                // A corrupt frame payload: count it, tell the client, tear
                // the connection down. The service was never touched, so no
                // shard state is affected. The failure flag is set *before*
                // the socket is shut down, so the reader — which wakes on
                // the resulting EOF — always attributes the teardown to a
                // drop, never to a clean close.
                ServerStats::bump(&stats.frame_decode_errors);
                let mut progress = job.conn.progress.lock().expect("progress lock");
                progress.applied_frames += 1;
                progress.failed = true;
                drop(progress);
                job.conn.done.notify_all();
                // Best-effort error response: try_lock so a reader stuck
                // writing to a non-draining client cannot stall this worker
                // on the mutex (the socket write itself is bounded by the
                // connection's write timeout).
                if let Ok(mut writer) = job.conn.writer.try_lock() {
                    if let Ok(body) = Response::Error(ServeError::BadRequest).encode() {
                        if let Ok(sent) = write_message(&mut *writer, &body) {
                            ServerStats::add(&stats.bytes_sent, sent);
                        }
                    }
                }
                job.conn.teardown();
            }
        }
    }
}
