//! # mbdr-net — the TCP serving layer
//!
//! The paper's dead-reckoning protocols exist to cut *network* traffic
//! between moving hosts and a location server — this crate puts the verified
//! wire codec of `mbdr_core::wire` on real sockets. It is std-only (no
//! external dependencies): an event-driven [`NetServer`] multiplexes every
//! connection over a **fixed** thread pool (nonblocking sockets on a
//! readiness loop — epoll on Linux, `poll(2)` elsewhere), parses
//! length-prefixed update [`Frame`](mbdr_core::Frame)s incrementally, feeds
//! them to
//! [`LocationService::apply_frame_bytes`](mbdr_locserver::LocationService::apply_frame_bytes)
//! through bounded ingest queues, and answers the binary query protocol of
//! [`mbdr_core::wire::query`] (rect / nearest / zone subscriptions) on the
//! same connection. [`NetClient`] is the matching blocking client.
//!
//! * [`transport`] — the length-prefixed message framing with its hostile-
//!   length-prefix guard (used by the blocking client; the server parses
//!   the same framing incrementally).
//! * [`NetServer`] / [`ServerConfig`] — accept thread, reactor pool,
//!   bounded ingest queues, backpressure and slow-client eviction, flush
//!   barrier (see [`server`] for the model).
//! * [`sys`] — the readiness backends ([`PollerBackend`]), the one place in
//!   the workspace with `unsafe` code.
//! * [`NetClient`] / [`ClientConfig`] / [`FlushSummary`] — one blocking
//!   connection, with optional connect/read timeouts, plus
//!   [`RetryPolicy`]-backed connect/reconnect for servers that restart.
//! * [`ServerStats`] / [`ServerStatsSnapshot`] — per-cause counters in the
//!   `LinkStats` discipline, so tests can assert exactly why a connection
//!   ended.
//! * [`NetError`] — everything that can go wrong, typed.
//!
//! The concurrent loopback workload lives in `mbdr_sim::net_workload`
//! (`reproduce net` emits its JSON baseline, `reproduce connscale` the
//! high-connection-count one), and the `net_serve` example drives a small
//! fleet through the full path.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod error;
mod reactor;
pub mod retry;
pub mod server;
pub mod stats;
#[allow(unsafe_code)]
pub mod sys;
pub mod transport;

pub use client::{ClientConfig, FlushSummary, NetClient};
pub use error::NetError;
pub use retry::RetryPolicy;
pub use server::{NetServer, ServerConfig};
pub use stats::{ServerStats, ServerStatsSnapshot};
pub use sys::PollerBackend;

#[cfg(test)]
mod tests {
    use super::*;
    use mbdr_core::{Frame, ObjectState, Update, UpdateKind};
    use mbdr_geo::{Aabb, Point};
    use mbdr_locserver::{LocationService, ObjectId};
    use std::sync::Arc;

    fn update(seq: u64, t: f64, x: f64, y: f64) -> Update {
        Update {
            sequence: seq,
            state: ObjectState::basic(Point::new(x, y), 0.0, 0.0, t),
            kind: UpdateKind::DeviationBound,
        }
    }

    fn served_fleet(objects: u64) -> NetServer {
        let service = Arc::new(LocationService::new());
        for i in 0..objects {
            service.register(ObjectId(i), Arc::new(mbdr_core::StaticPredictor));
        }
        NetServer::bind(service, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback")
    }

    #[test]
    fn ingest_flush_query_roundtrip_over_loopback() {
        let server = served_fleet(3);
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        for i in 0..3u64 {
            let frame = Frame::single(i, update(0, 0.0, 100.0 * i as f64, 0.0));
            client.send_frame(&frame).expect("send");
        }
        let flush = client.flush().expect("flush");
        assert_eq!(flush.frames, 3);
        assert_eq!(flush.updates_applied, 3);

        let area = Aabb::new(Point::new(-10.0, -10.0), Point::new(150.0, 10.0));
        let inside = client.objects_in_rect(&area, 1.0).expect("rect query");
        assert_eq!(inside.len(), 2, "objects 0 and 100 are inside, 200 is not");
        assert_eq!(inside[0].object, 0);
        assert_eq!(inside[1].object, 1);

        let nearest = client.nearest_objects(&Point::new(190.0, 0.0), 1.0, 2).expect("nearest");
        assert_eq!(nearest.len(), 2);
        assert_eq!(nearest[0].object, 2, "the 10 m away object first");

        // Zone subscription: object 0 sits inside the zone from the start.
        client.subscribe_zone(7, &Aabb::around(Point::new(0.0, 0.0), 5.0)).expect("subscribe");
        let events = client.poll_zones(1.0).expect("poll");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].zone, 7);
        assert_eq!(events[0].object, 0);
        assert!(events[0].entered);
        assert!(client.poll_zones(2.0).expect("second poll").is_empty(), "no transition");

        drop(client);
        let stats = server.shutdown();
        assert_eq!(stats.connections_accepted, 1);
        assert_eq!(stats.connections_closed, 1);
        assert_eq!(stats.connections_dropped, 0);
        assert_eq!(stats.frames_received, 3);
        assert_eq!(stats.updates_applied, 3);
        assert_eq!(stats.queries_answered, 4, "rect + nearest + two polls");
        assert_eq!(stats.zone_events_emitted, 1);
        assert!(stats.bytes_received > 0 && stats.bytes_sent > 0);
    }

    #[test]
    fn flush_on_an_idle_connection_reports_zero() {
        let server = served_fleet(1);
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        let flush = client.flush().expect("flush");
        assert_eq!(flush, FlushSummary { frames: 0, updates_applied: 0 });
    }

    #[test]
    fn frames_for_unregistered_objects_apply_nothing_but_keep_the_connection() {
        let server = served_fleet(1);
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.send_frame(&Frame::single(99, update(0, 0.0, 1.0, 1.0))).expect("send");
        let flush = client.flush().expect("flush");
        assert_eq!(flush.frames, 1);
        assert_eq!(flush.updates_applied, 0, "unknown source applies nothing");
        assert_eq!(server.stats().connections_dropped, 0);
    }

    #[test]
    fn many_concurrent_connections_are_served() {
        let server = served_fleet(8);
        let addr = server.local_addr();
        let mut handles = Vec::new();
        for c in 0..4u64 {
            handles.push(std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                for step in 0..20u64 {
                    let object = (c * 2 + step) % 8;
                    client
                        .send_frame(&Frame::single(object, update(step, step as f64, 1.0, 2.0)))
                        .expect("send");
                }
                client.flush().expect("flush").frames
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().expect("client thread")).sum();
        assert_eq!(total, 80);
        let stats = server.shutdown();
        assert_eq!(stats.frames_received, 80);
        assert_eq!(stats.connections_accepted, 4);
    }

    #[test]
    fn shutdown_with_a_live_connection_joins_cleanly() {
        let server = served_fleet(1);
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        client.send_frame(&Frame::single(0, update(0, 0.0, 1.0, 1.0))).expect("send");
        // The flush response proves the server is actually holding the
        // connection (a bare connect only completes the kernel handshake).
        assert_eq!(client.flush().expect("flush").frames, 1);
        // Shutting down with the connection still open must join every
        // thread instead of hanging on the blocked reader.
        let stats = server.shutdown();
        assert_eq!(stats.connections_accepted, 1);
        // The torn-down socket fails the client from here on (the flush
        // either errors on write or on the closed read side).
        assert!(client.flush().is_err());
    }
}
