//! `ClientConfig` regression tests: a server that accepts the connection
//! and then never responds must cost a configured timeout, not a hang; and
//! `reconnect_with_fresh_sequence` must hand back the next safe sequence
//! number so a resuming producer cannot replay into the dedup window.

use mbdr_core::{Frame, ObjectState, Update, UpdateKind};
use mbdr_geo::Point;
use mbdr_locserver::{LocationService, ObjectId};
use mbdr_net::{ClientConfig, NetClient, NetServer, ServerConfig};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn update(seq: u64, t: f64, x: f64, y: f64) -> Update {
    Update {
        sequence: seq,
        state: ObjectState::basic(Point::new(x, y), 0.0, 0.0, t),
        kind: UpdateKind::DeviationBound,
    }
}

#[test]
fn a_read_timeout_turns_a_mute_server_into_an_error_not_a_hang() {
    // A listener that accepts and then never says a word: without a read
    // timeout, `flush` would block forever on the response.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind mute listener");
    let addr = listener.local_addr().expect("listener addr");
    let mute = std::thread::spawn(move || {
        // Hold the accepted socket so the client's write succeeds and its
        // read genuinely waits on a peer that will never answer.
        let (stream, _) = listener.accept().expect("accept");
        std::thread::sleep(Duration::from_secs(10));
        drop(stream);
    });

    let mut client = NetClient::connect_with(
        addr,
        ClientConfig { read_timeout: Some(Duration::from_millis(200)), ..ClientConfig::default() },
    )
    .expect("connect to the mute server");
    let asked = Instant::now();
    let result = client.flush();
    let waited = asked.elapsed();
    assert!(result.is_err(), "a mute server must surface as an error");
    assert!(
        waited < Duration::from_secs(5),
        "flush returned after {waited:?} — the read timeout did not bound the wait"
    );
    drop(client);
    drop(mute); // the sleeper finishes on its own; no need to join 10 s
}

#[test]
fn connect_with_honors_an_explicit_connect_timeout_against_a_live_server() {
    // The timeout path must still connect to a healthy server (the
    // unreachable-peer case would need routing tricks a unit test cannot
    // portably set up, so this pins the success side of `connect_timeout`).
    let service = Arc::new(LocationService::new());
    service.register(ObjectId(0), Arc::new(mbdr_core::StaticPredictor));
    let server = NetServer::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = NetClient::connect_with(
        server.local_addr(),
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(2)),
            read_timeout: Some(Duration::from_secs(5)),
            ..ClientConfig::default()
        },
    )
    .expect("timed connect to a live server succeeds");
    assert_eq!(client.flush().expect("flush").frames, 0);
}

#[test]
fn reconnecting_resumes_with_a_fresh_sequence_past_everything_sent() {
    let service = Arc::new(LocationService::new());
    service.register(ObjectId(7), Arc::new(mbdr_core::StaticPredictor));
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");

    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    for seq in 0..5u64 {
        client.send_frame(&Frame::single(7, update(seq, seq as f64, 1.0, 2.0))).expect("send");
    }
    assert_eq!(client.flush().expect("flush").updates_applied, 5);

    // The helper dials a fresh socket to the same peer and reports the next
    // sequence a resuming producer may safely use: one past the maximum it
    // ever put on the wire (sequences 0..=4 were sent, so 5).
    let next = client.reconnect_with_fresh_sequence().expect("reconnect");
    assert_eq!(next, 5, "one past the maximum sequence sent before the reconnect");

    // A replayed pre-reconnect straggler (old sequence, old timestamp) is
    // delivered but deduplicated by the tracker; the fresh sequence lands
    // and moves the store.
    client.send_frame(&Frame::single(7, update(0, 0.0, 3.0, 4.0))).expect("straggler send");
    client.send_frame(&Frame::single(7, update(next, 10.0, 5.0, 6.0))).expect("fresh send");
    let flush = client.flush().expect("flush after reconnect");
    assert_eq!(flush.frames, 2);
    assert_eq!(
        service.total_updates(),
        6,
        "5 originals + the fresh update; the straggler was rejected as stale"
    );

    // Reconnecting again advances past the newest send.
    let next = client.reconnect_with_fresh_sequence().expect("second reconnect");
    assert_eq!(next, 6);
    // A round trip on the fresh socket, so the server has provably admitted
    // it before the stats are read.
    assert_eq!(client.flush().expect("flush on the fresh socket").frames, 0);

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.connections_accepted, 3, "original + two reconnects");
    assert_eq!(stats.connections_dropped, 0, "reconnects close the old socket cleanly");
}
