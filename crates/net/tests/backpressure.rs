//! The reactor's overload policy, pinned by counters: a client that stops
//! reading is *evicted* (outbound-bound overflow or write-stall budget, each
//! on its own counter path), a full ingest queue *stalls* the producer
//! instead of dropping frames, and a connection the admission cap refuses is
//! a `register_failures` drop — all while healthy connections on the same
//! reactors keep answering within an ordinary latency bound.

use mbdr_core::{Frame, ObjectState, Request, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ObjectId};
use mbdr_net::transport::write_message;
use mbdr_net::{NetClient, NetServer, ServerConfig};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn update(seq: u64, t: f64, x: f64, y: f64) -> Update {
    Update {
        sequence: seq,
        state: ObjectState::basic(Point::new(x, y), 0.0, 0.0, t),
        kind: UpdateKind::DeviationBound,
    }
}

/// A fleet large enough that one rect-over-everything response is tens of
/// kilobytes — so an unread connection overflows its outbound bound after a
/// handful of queries instead of hiding in socket buffers.
fn served_wide_fleet(objects: u64, config: ServerConfig) -> (Arc<LocationService>, NetServer) {
    let service = Arc::new(LocationService::new());
    for i in 0..objects {
        service.register(ObjectId(i), Arc::new(mbdr_core::StaticPredictor));
    }
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let mut feeder = NetClient::connect(server.local_addr()).expect("feeder connects");
    for i in 0..objects {
        feeder.send_frame(&Frame::single(i, update(0, 0.0, i as f64, 0.0))).expect("feed");
    }
    assert_eq!(feeder.flush().expect("feed flush").updates_applied, objects);
    drop(feeder); // one clean close on the stats
    (service, server)
}

/// The whole fleet in one rectangle.
fn world() -> Aabb {
    Aabb::new(Point::new(-10.0, -10.0), Point::new(1e6, 10.0))
}

/// Fires rect queries at the server without ever reading a byte back, until
/// the server gives up on us. Returns when the socket dies (evicted) or the
/// deadline passes (test will then fail on the counter assert).
fn flood_queries_never_read(addr: std::net::SocketAddr, deadline: Instant) {
    let mut s = TcpStream::connect(addr).expect("slow client connects");
    let request = Request::Rect { area: world(), t: 1.0 }.encode();
    while Instant::now() < deadline {
        if write_message(&mut s, &request).is_err() {
            return; // the server shut the socket down: evicted
        }
    }
}

#[test]
fn unread_responses_overflow_the_outbound_bound_and_evict_only_the_slow_client() {
    let (_service, server) = served_wide_fleet(
        2_000,
        ServerConfig { max_outbound_bytes: 8 * 1024, ..ServerConfig::default() },
    );
    let addr = server.local_addr();
    let deadline = Instant::now() + Duration::from_secs(20);

    let slow = std::thread::spawn(move || flood_queries_never_read(addr, deadline));

    // A healthy connection on the same reactors must keep answering while
    // the slow client is being buried — and within an ordinary bound, not
    // just eventually.
    let mut healthy = NetClient::connect(addr).expect("healthy connects");
    let mut evicted_seen = false;
    while Instant::now() < deadline {
        let asked = Instant::now();
        let inside = healthy.objects_in_rect(&world(), 1.0).expect("healthy keeps answering");
        assert_eq!(inside.len(), 2_000);
        assert!(
            asked.elapsed() < Duration::from_secs(5),
            "healthy query latency blew up during the eviction"
        );
        if server.stats().evicted_slow > 0 {
            evicted_seen = true;
            break;
        }
    }
    assert!(evicted_seen, "the unread connection was never evicted");
    slow.join().expect("slow client thread");

    // One more answer after the eviction, then exact attribution.
    assert_eq!(healthy.objects_in_rect(&world(), 1.0).expect("after eviction").len(), 2_000);
    drop(healthy);
    let stats = server.shutdown();
    assert_eq!(stats.evicted_slow, 1, "exactly the slow client");
    assert_eq!(stats.connections_dropped, 1, "an eviction is also a drop");
    assert_eq!(stats.register_failures, 0);
}

#[test]
fn a_write_blocked_connection_is_evicted_within_the_stall_budget() {
    // A huge outbound bound takes the overflow path out of play: the only
    // way out is the write-stall clock.
    let budget = Duration::from_millis(200);
    let (_service, server) = served_wide_fleet(
        2_000,
        ServerConfig {
            max_outbound_bytes: 64 * 1024 * 1024,
            write_stall_budget: budget,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let deadline = Instant::now() + Duration::from_secs(20);
    let started = Instant::now();
    flood_queries_never_read(addr, deadline);
    let evicted_after = started.elapsed();
    assert!(Instant::now() < deadline, "server never evicted the write-blocked client");
    // The clock starts when the kernel buffers fill, so the observed wall
    // time is budget + fill time + a scheduling tick — well under the
    // multi-second default, proving the configured budget was the trigger.
    assert!(
        evicted_after < Duration::from_secs(10),
        "eviction took {evicted_after:?}, not bounded by the {budget:?} budget"
    );
    let stats = server.shutdown();
    assert_eq!(stats.evicted_slow, 1);
    assert_eq!(stats.connections_dropped, 1);
}

#[test]
fn a_full_ingest_queue_stalls_the_producer_without_losing_updates() {
    let service = Arc::new(LocationService::new());
    service.register(ObjectId(0), Arc::new(mbdr_core::StaticPredictor));
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig { ingest_workers: 1, ingest_queue: 1, ..ServerConfig::default() },
    )
    .unwrap();

    // Bursts of frames into a single-slot queue: the reactor parses a burst
    // far faster than the worker applies it, so admission must push back
    // (read-interest withdrawal + a parked frame), never drop.
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let mut sent = 0u64;
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.stats().backpressure_stalls == 0 && Instant::now() < deadline {
        for _ in 0..512 {
            client
                .send_frame(&Frame::single(0, update(sent, sent as f64, 1.0, 2.0)))
                .expect("send");
            sent += 1;
        }
        // The flush barrier proves the parked frame was replayed in order.
        assert_eq!(client.flush().expect("flush").frames, sent);
    }
    let stalls = server.stats().backpressure_stalls;
    assert!(stalls > 0, "a single-slot queue never stalled under {sent} frames");
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.frames_received, sent);
    assert_eq!(stats.updates_applied, sent, "backpressure stalled, it did not drop");
    assert_eq!(stats.connections_dropped, 0);
    assert_eq!(service.total_updates(), sent);
}

#[test]
fn connections_beyond_the_admission_cap_are_counted_register_failures() {
    let service = Arc::new(LocationService::new());
    service.register(ObjectId(0), Arc::new(mbdr_core::StaticPredictor));
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig { max_connections: 2, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    // Two admitted connections, proven live by a round trip each.
    let mut first = NetClient::connect(addr).expect("first connects");
    let mut second = NetClient::connect(addr).expect("second connects");
    assert_eq!(first.flush().expect("first flush").frames, 0);
    assert_eq!(second.flush().expect("second flush").frames, 0);

    // The third is accepted by the kernel but refused registration: its
    // first round trip fails instead of hanging, and the refusal is already
    // on the counter by the time the failure is observable.
    let mut third = NetClient::connect(addr).expect("kernel accepts the third");
    assert!(third.flush().is_err(), "refused connection cannot be served");
    let mut refusals = 1u64;
    assert_eq!(server.stats().register_failures, refusals);

    // An admitted connection closing frees a slot for a newcomer. The
    // teardown is asynchronous, so a retry may still be refused — every
    // such refusal is counted by the test to keep the final assert exact.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut fourth = loop {
        let mut candidate = NetClient::connect(addr).expect("kernel accepts the fourth");
        if candidate.flush().is_ok() {
            break candidate;
        }
        refusals += 1;
        assert!(Instant::now() < deadline, "freed slot was never reusable");
    };
    assert_eq!(fourth.flush().expect("fourth flush").frames, 0);

    drop(second);
    drop(third);
    drop(fourth);
    let stats = server.shutdown();
    assert_eq!(stats.register_failures, refusals, "every refusal on its own counter");
    assert_eq!(stats.connections_dropped, refusals, "each refusal is attributed as a drop");
    assert_eq!(stats.updates_applied, 0);
}
