//! The serving layer under hostile bytes: truncated messages, oversized
//! length prefixes, garbage requests and corrupt frame payloads must each be
//! answered with a typed error (where the socket still allows one), counted
//! on the right `ServerStats` counter, and end in a *clean* connection drop
//! — no panic, no poisoned shard lock, and no effect on the served state.
//! A legitimate connection opened after the abuse must work exactly as if
//! the abuse never happened.

use mbdr_core::{Frame, ObjectState, Request, Response, ServeError, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ObjectId};
use mbdr_net::transport::{read_message, write_message};
use mbdr_net::{NetClient, NetError, NetServer, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn update(seq: u64, t: f64, x: f64, y: f64) -> Update {
    Update {
        sequence: seq,
        state: ObjectState::basic(Point::new(x, y), 0.0, 0.0, t),
        kind: UpdateKind::DeviationBound,
    }
}

/// Expects the next message on `stream` to be the given serve error, and the
/// connection to be closed right after it.
fn expect_error_then_close(stream: &mut TcpStream, expected: ServeError) {
    let body = read_message(stream, 1 << 20)
        .expect("error response arrives before the drop")
        .expect("a response, not EOF");
    match Response::decode(&body).expect("server responses decode") {
        Response::Error(code) => assert_eq!(code, expected),
        other => panic!("expected Error({expected:?}), got {other:?}"),
    }
    // The server dropped the connection after the error: the read side
    // reaches EOF (either a clean close or a reset, depending on timing).
    match read_message(stream, 1 << 20) {
        Ok(None) | Err(NetError::Io(_)) => {}
        other => panic!("expected the connection to be closed, got {other:?}"),
    }
}

#[test]
fn hostile_inputs_are_counted_dropped_and_leave_the_service_intact() {
    let service = Arc::new(LocationService::new());
    service.register(ObjectId(1), Arc::new(mbdr_core::StaticPredictor));
    let server =
        NetServer::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // A legitimate update first, so "the state is untouched" is observable.
    let mut good = NetClient::connect(addr).expect("connect");
    good.send_frame(&Frame::single(1, update(0, 0.0, 50.0, 50.0))).expect("send");
    assert_eq!(good.flush().expect("flush").updates_applied, 1);

    // 1. Truncated message: a prefix promising 100 bytes, then silence.
    let mut s = TcpStream::connect(addr).expect("connect raw");
    s.write_all(&100u32.to_be_bytes()).expect("prefix");
    s.write_all(&[0xAB; 10]).expect("partial body");
    drop(s); // EOF mid-message

    // 2. Oversized length prefix: refused unread, with a typed error back.
    let mut s = TcpStream::connect(addr).expect("connect raw");
    s.write_all(&u32::MAX.to_be_bytes()).expect("hostile prefix");
    expect_error_then_close(&mut s, ServeError::Oversized);

    // 3. A garbage request kind inside a valid envelope.
    let mut s = TcpStream::connect(addr).expect("connect raw");
    write_message(&mut s, &[0x7F, 1, 2, 3]).expect("garbage request");
    expect_error_then_close(&mut s, ServeError::BadRequest);

    // 4. A truncated rect query (valid kind, body cut short).
    let mut s = TcpStream::connect(addr).expect("connect raw");
    let mut rect = Request::Rect { area: Aabb::around(Point::ORIGIN, 10.0), t: 1.0 }.encode();
    rect.truncate(rect.len() - 7);
    write_message(&mut s, &rect).expect("truncated query");
    expect_error_then_close(&mut s, ServeError::BadRequest);

    // 5. A corrupt frame payload: the envelope decodes (ingest kind), the
    //    apply path rejects the bytes, the worker reports and drops.
    let mut s = TcpStream::connect(addr).expect("connect raw");
    let mut corrupt = vec![0x01]; // ingest kind
    corrupt.extend_from_slice(&[0xEE; 25]); // not a decodable frame
    write_message(&mut s, &corrupt).expect("corrupt frame");
    expect_error_then_close(&mut s, ServeError::BadRequest);

    // 6. A NaN query point: rejected at decode time, never reaching the
    //    distance ordering inside the service.
    let mut s = TcpStream::connect(addr).expect("connect raw");
    let mut nan = Request::Nearest { from: Point::ORIGIN, t: 1.0, k: 3 }.encode();
    nan[1..9].copy_from_slice(&f64::NAN.to_be_bytes());
    write_message(&mut s, &nan).expect("nan query");
    expect_error_then_close(&mut s, ServeError::BadRequest);

    // After all the abuse: a fresh connection is served normally — the shard
    // locks survived (not poisoned, not held) and the state is exactly the
    // one legitimate update.
    let mut after = NetClient::connect(addr).expect("connect after abuse");
    let inside =
        after.objects_in_rect(&Aabb::around(Point::new(50.0, 50.0), 5.0), 1.0).expect("query");
    assert_eq!(inside.len(), 1);
    assert_eq!(inside[0].object, 1);
    after.send_frame(&Frame::single(1, update(1, 2.0, 60.0, 50.0))).expect("send");
    assert_eq!(after.flush().expect("flush").updates_applied, 1);
    assert_eq!(service.total_updates(), 2, "only the legitimate updates reached the store");

    drop(good);
    drop(after);
    let stats = server.shutdown();
    assert_eq!(stats.connections_accepted, 8, "2 good + 6 hostile");
    assert_eq!(stats.connections_closed, 2, "the good connections closed cleanly");
    assert_eq!(stats.connections_dropped, 6, "every hostile connection was dropped");
    assert_eq!(stats.oversized_messages, 1);
    assert_eq!(stats.frame_decode_errors, 1);
    assert_eq!(
        stats.request_decode_errors, 3,
        "garbage kind + truncated rect + NaN query (the truncated message is an io error)"
    );
    assert_eq!(stats.updates_applied, 2);
    assert_eq!(stats.frames_received, 3, "two good frames + the corrupt envelope");
}

#[test]
fn corrupt_frame_then_immediate_close_still_counts_as_a_drop() {
    // The client fires a corrupt frame and disappears without reading: the
    // reader sees its EOF possibly before the worker has judged the frame,
    // and must wait for the ingest verdict instead of racing it — the
    // teardown is a drop, never a clean close.
    let service = Arc::new(LocationService::new());
    service.register(ObjectId(1), Arc::new(mbdr_core::StaticPredictor));
    let server = NetServer::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut s = TcpStream::connect(server.local_addr()).expect("connect raw");
    let mut corrupt = vec![0x01u8];
    corrupt.extend_from_slice(&[0xEE; 25]);
    write_message(&mut s, &corrupt).expect("corrupt frame");
    drop(s); // close without ever reading
             // Wait until the frame has been judged (the verdict is asynchronous).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.stats().frame_decode_errors == 0 {
        assert!(std::time::Instant::now() < deadline, "worker never saw the frame");
        std::thread::yield_now();
    }
    let stats = server.shutdown();
    assert_eq!(stats.frame_decode_errors, 1);
    assert_eq!(stats.connections_dropped, 1, "attributed as a drop");
    assert_eq!(stats.connections_closed, 0, "never as a clean close");
}

#[test]
fn a_flood_of_corrupt_frames_cannot_wedge_the_ingest_queue() {
    // Several connections race corrupt and valid frames through the shared
    // bounded queue: every corrupt source gets dropped, every valid update
    // lands, and shutdown still joins cleanly (nothing deadlocks).
    let service = Arc::new(LocationService::new());
    for i in 0..4u64 {
        service.register(ObjectId(i), Arc::new(mbdr_core::StaticPredictor));
    }
    let server = NetServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig { ingest_workers: 2, ingest_queue: 4, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for c in 0..4u64 {
        handles.push(std::thread::spawn(move || {
            if c % 2 == 0 {
                // Hostile: a burst of corrupt frames.
                let mut s = TcpStream::connect(addr).expect("connect raw");
                for _ in 0..8 {
                    let mut corrupt = vec![0x01u8];
                    corrupt.extend_from_slice(&[0xEE; 30]);
                    if write_message(&mut s, &corrupt).is_err() {
                        break; // already torn down mid-burst: equally fine
                    }
                }
                0u64
            } else {
                let mut client = NetClient::connect(addr).expect("connect");
                for step in 0..24u64 {
                    client
                        .send_frame(&Frame::single(c, update(step, step as f64, 1.0, 2.0)))
                        .expect("valid producer keeps working");
                }
                client.flush().expect("flush").updates_applied
            }
        }));
    }
    let applied: u64 = handles.into_iter().map(|h| h.join().expect("client thread")).sum();
    assert_eq!(applied, 48, "every valid update landed despite the flood");
    let stats = server.shutdown();
    assert_eq!(stats.updates_applied, 48);
    assert!(stats.frame_decode_errors >= 2, "both hostile connections were caught");
    assert_eq!(service.total_updates(), 48);
}
