//! The idle-connection soak: the reason the reactor exists. A crowd of
//! mostly-idle connections must cost the server *zero* threads beyond its
//! fixed pool (accept + reactors + ingest workers), while a hot subset
//! streaming through the same reactors stays bit-identical to feeding the
//! service directly in-process. The CI-sized variant runs by default; the
//! full two-thousand-connection soak is `#[ignore]`d tier-2
//! (`cargo test -p mbdr-net --test idle_soak -- --ignored`).

use mbdr_core::{Frame, ObjectState, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ObjectId, ServiceConfig};
use mbdr_net::{NetClient, NetServer, ServerConfig};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// OS threads of this process right now (Linux `/proc/self/task`).
fn resident_threads() -> Option<usize> {
    std::fs::read_dir("/proc/self/task").ok().map(|entries| entries.count())
}

/// Thread accounting only works if no other test is spawning threads in
/// this process concurrently, so the two soak variants take this lock.
static SOAK_LOCK: Mutex<()> = Mutex::new(());

fn update(seq: u64, t: f64, x: f64, y: f64) -> Update {
    Update {
        sequence: seq,
        state: ObjectState::basic(Point::new(x, y), 0.0, 0.0, t),
        kind: UpdateKind::DeviationBound,
    }
}

/// The deterministic update stream of one hot object.
fn hot_stream(object: u64) -> Vec<Frame> {
    (0..12u64)
        .map(|step| {
            Frame::single(
                object,
                update(step, step as f64, (object * 100 + step) as f64, step as f64 * 3.0),
            )
        })
        .collect()
}

fn run_soak(idle_connections: usize, hot_objects: u64) {
    let _guard = SOAK_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());

    // The reference service is fed the identical frames in-process.
    let config = ServiceConfig::with_shards(4);
    let reference = LocationService::with_config(config);
    let served = Arc::new(LocationService::with_config(config));
    for i in 0..hot_objects {
        reference.register(ObjectId(i), Arc::new(mbdr_core::StaticPredictor));
        served.register(ObjectId(i), Arc::new(mbdr_core::StaticPredictor));
    }

    let threads_before = resident_threads();
    let server = NetServer::bind(
        Arc::clone(&served),
        "127.0.0.1:0",
        ServerConfig { max_connections: idle_connections + 64, ..ServerConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    // The idle crowd: raw connects, never a byte sent.
    let mut idle = Vec::with_capacity(idle_connections);
    for _ in 0..idle_connections {
        idle.push(TcpStream::connect(addr).expect("idle connect"));
    }
    // Wait until the server has admitted every one of them (acceptance is
    // asynchronous), so the thread census counts the full crowd.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().connections_accepted < idle_connections as u64 {
        assert!(Instant::now() < deadline, "server never admitted the whole crowd");
        std::thread::yield_now();
    }

    // The claim itself: the crowd added ZERO threads — the process grew by
    // exactly the server's fixed pool, independent of the connection count.
    if let (Some(before), Some(now)) = (threads_before, resident_threads()) {
        assert_eq!(
            now - before,
            server.pool_threads(),
            "resident threads must grow by the fixed pool only, never per connection"
        );
    }

    // The hot subset streams through the reactors with the crowd attached.
    let mut hot_clients: Vec<NetClient> =
        (0..hot_objects).map(|_| NetClient::connect(addr).expect("hot connect")).collect();
    for (i, client) in hot_clients.iter_mut().enumerate() {
        for frame in hot_stream(i as u64) {
            let bytes = frame.encode().expect("frames encode");
            reference.apply_frame_bytes(&bytes).expect("reference apply");
            client.send_frame(&frame).expect("hot send");
        }
        assert_eq!(client.flush().expect("hot flush").frames, 12);
    }
    assert_eq!(served.total_updates(), reference.total_updates());

    // Bit-identity: the served answers equal direct calls on the reference,
    // field for field, bit for bit.
    let area = Aabb::new(Point::new(-10.0, -10.0), Point::new(1e6, 1e6));
    for &t in &[3.0, 7.5, 11.0, 40.0] {
        let over_wire = hot_clients[0].objects_in_rect(&area, t).expect("rect over TCP");
        let direct = reference.objects_in_rect(&area, t);
        assert_eq!(over_wire.len(), direct.len(), "rect cardinality at t={t}");
        for (w, d) in over_wire.iter().zip(&direct) {
            assert_eq!(w.object, d.object.0);
            assert_eq!(w.position.x.to_bits(), d.position.x.to_bits());
            assert_eq!(w.position.y.to_bits(), d.position.y.to_bits());
            assert_eq!(w.information_age.to_bits(), d.information_age.to_bits());
        }
    }

    // Still no extra threads after serving the hot subset under load.
    if let (Some(before), Some(now)) = (threads_before, resident_threads()) {
        assert_eq!(now - before, server.pool_threads());
    }

    drop(hot_clients);
    drop(idle);
    let stats = server.shutdown();
    assert_eq!(stats.connections_accepted, idle_connections as u64 + hot_objects);
    assert_eq!(stats.updates_applied, hot_objects * 12);
    assert_eq!(stats.evicted_slow, 0);
    assert_eq!(stats.register_failures, 0);
}

#[test]
fn a_mostly_idle_crowd_adds_no_threads_and_leaves_the_hot_path_bit_identical() {
    // CI-sized: fits comfortably under default fd limits.
    run_soak(192, 8);
}

#[test]
#[ignore = "tier-2 soak: ~2k idle connections, needs `ulimit -n` ≥ 8192"]
fn two_thousand_idle_connections_hold_on_the_fixed_pool() {
    run_soak(2_048, 8);
}
