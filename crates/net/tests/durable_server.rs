//! End-to-end durability over TCP: a server started with
//! [`NetServer::bind_durable`] journals every ingested frame, and a
//! restarted server over the same directory answers queries identically —
//! with the whole recovery visible through `RecoveryReport` and
//! `ServerStatsSnapshot::journal`.

use mbdr_core::{DurabilityState, Frame, LinearPredictor, ObjectState, Update, UpdateKind};
use mbdr_geo::{Aabb, Point};
use mbdr_journal::{FaultFs, FsyncPolicy, Journal, JournalConfig};
use mbdr_locserver::durable::recover_into;
use mbdr_locserver::{LocationService, ObjectId};
use mbdr_net::{ClientConfig, NetClient, NetServer, RetryPolicy, ServerConfig};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const OBJECTS: u64 = 16;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("mbdr-net-durable-{}-{tag}-{seq}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fleet() -> Arc<LocationService> {
    let service = Arc::new(LocationService::new());
    for i in 0..OBJECTS {
        service.register(ObjectId(i), Arc::new(LinearPredictor));
    }
    service
}

fn update(seq: u64, t: f64, x: f64, y: f64) -> Update {
    Update {
        sequence: seq,
        state: ObjectState::basic(Point::new(x, y), 2.0, 0.5, t),
        kind: UpdateKind::DeviationBound,
    }
}

fn journal_config(dir: &Path) -> JournalConfig {
    JournalConfig { fsync: FsyncPolicy::PerBatch(4), ..JournalConfig::new(dir) }
}

fn world() -> Aabb {
    Aabb::new(Point::new(-1000.0, -1000.0), Point::new(1000.0, 1000.0))
}

#[test]
fn durable_server_serves_identical_answers_after_restart() {
    let dir = temp_dir("restart");

    // First life: ingest over TCP, remember the answers, shut down cleanly.
    let server = NetServer::bind_durable(
        fleet(),
        "127.0.0.1:0",
        ServerConfig::default(),
        journal_config(&dir),
    )
    .expect("first bind");
    let report = server.recovery_report().expect("durable server has a report");
    assert_eq!(report.replayed_frames, 0, "fresh dir: {report:?}");

    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    for i in 0..OBJECTS {
        let frame =
            Frame::single(i, update(7, 1.0 + i as f64 * 0.25, i as f64 * 10.0, -(i as f64)));
        client.send_frame(&frame).expect("send");
    }
    let summary = client.flush().expect("flush");
    assert_eq!(summary.updates_applied, OBJECTS);
    drop(client);

    let live_stats = server.stats();
    assert_eq!(live_stats.journal.appends, OBJECTS, "one journaled record per frame");
    assert!(live_stats.journal.fsyncs > 0);
    let before = server.service().objects_in_rect(&world(), 30.0);
    assert_eq!(before.len(), OBJECTS as usize);
    server.shutdown();

    // Second life: fresh service, same directory — the journal replays the
    // sixteen frames and the same rect query returns bit-identical reports.
    let server = NetServer::bind_durable(
        fleet(),
        "127.0.0.1:0",
        ServerConfig::default(),
        journal_config(&dir),
    )
    .expect("second bind");
    let report = *server.recovery_report().expect("report");
    assert_eq!(report.replayed_frames, OBJECTS, "{report:?}");
    assert_eq!(report.replayed_updates, OBJECTS, "{report:?}");
    assert_eq!(report.frame_decode_errors, 0);
    assert_eq!(report.truncated_bytes, 0);

    let after = server.service().objects_in_rect(&world(), 30.0);
    assert_eq!(before, after, "recovered answers must be bit-identical");

    // The recovery is visible through the ordinary stats surface too.
    let stats = server.stats();
    assert_eq!(stats.journal.recovered_frames, OBJECTS);
    assert_eq!(stats.journal.appends, 0, "no live ingest yet in this life");

    // And the recovered server keeps journaling live traffic.
    let mut client = NetClient::connect(server.local_addr()).expect("reconnect");
    client.send_frame(&Frame::single(0, update(8, 40.0, 500.0, 500.0))).expect("send");
    assert_eq!(client.flush().expect("flush").updates_applied, 1);
    assert_eq!(server.stats().journal.appends, 1);
    drop(client);
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// A server over a journal whose disk dies mid-stream: serving continues,
/// the degradation is visible over the wire (`REQ_HEALTH`) and through
/// `ServerStatsSnapshot::durability` with exact frame accounting — and once
/// the disk heals, the server's own background probe thread recovers
/// durability without any operator action.
#[test]
fn disk_death_is_observable_and_self_heals_over_the_wire() {
    let dir = temp_dir("self-heal");
    let fault = FaultFs::over_real();
    let service = fleet();
    let journal = Arc::new(
        Journal::open_with_vfs(
            JournalConfig { snapshot_every_frames: 0, ..journal_config(&dir) },
            Arc::new(fault.clone()),
        )
        .expect("open over FaultFs"),
    );
    recover_into(&service, &journal).expect("recover");
    assert!(service.attach_journal(Arc::clone(&journal)));
    let server =
        NetServer::bind(service, "127.0.0.1:0", ServerConfig::default()).expect("bind over faults");

    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let health = client.health().expect("health");
    assert_eq!(health.state, DurabilityState::Durable);
    assert_eq!(health.degraded_frames, 0);

    // Durable ingest, then the disk dies mid-stream.
    for i in 0..4u64 {
        client.send_frame(&Frame::single(i, update(1, 1.0, 10.0 * i as f64, 0.0))).expect("send");
    }
    client.flush().expect("flush");
    fault.set_dead(true);
    for i in 4..9u64 {
        client.send_frame(&Frame::single(i, update(1, 1.0, 10.0 * i as f64, 0.0))).expect("send");
    }
    client.flush().expect("degraded flush: serving continues");

    let health = client.health().expect("degraded health");
    assert_eq!(health.state, DurabilityState::Degraded);
    assert_eq!(health.degraded_frames, 5, "exactly the un-journaled applies");
    assert_eq!(health.append_errors, 1, "one failed append flipped the state");
    let stats = server.stats();
    assert_eq!(stats.durability.state, DurabilityState::Degraded);
    assert_eq!(stats.durability.degraded_frames, 5);
    assert_eq!(stats.durability.degraded_transitions, 1);

    // Queries still answer while degraded — availability over durability.
    assert_eq!(client.objects_in_rect(&world(), 1.0).expect("rect").len(), 9);

    // Heal the disk; the server's probe thread recovers on its own.
    fault.set_dead(false);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = client.health().expect("health poll");
        if health.state == DurabilityState::Recovered {
            break;
        }
        assert!(Instant::now() < deadline, "probe thread failed to recover in time");
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.stats();
    assert_eq!(stats.durability.recovered_transitions, 1);
    assert!(stats.durability.probe_attempts >= 1);
    assert_eq!(stats.durability.degraded_frames, 5, "the window's count is preserved");
    assert_eq!(journal.stats().snapshots, 1, "recovery installed a forced snapshot");

    // Recovered ingest journals again.
    let appends_before = journal.stats().appends;
    client.send_frame(&Frame::single(0, update(2, 2.0, 99.0, 0.0))).expect("send");
    client.flush().expect("flush");
    assert_eq!(journal.stats().appends, appends_before + 1);

    drop(client);
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// `connect_with_retry` rides out a server that is not up yet: dials fail
/// with refused connections until the listener appears, then succeed within
/// the policy's deadline.
#[test]
fn client_retry_rides_out_a_late_starting_server() {
    // Reserve an address, then free it so the first dials are refused.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve");
    let addr = listener.local_addr().expect("addr");
    drop(listener);

    let starter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        NetServer::bind(fleet(), addr, ServerConfig::default()).expect("late bind")
    });
    let policy = RetryPolicy {
        initial_backoff: Duration::from_millis(20),
        max_backoff: Duration::from_millis(100),
        deadline: Duration::from_secs(10),
        jitter_seed: 9,
    };
    let mut client = NetClient::connect_with_retry(addr, ClientConfig::default(), policy)
        .expect("retry connect");
    let server = starter.join().expect("server thread");
    client.send_frame(&Frame::single(0, update(1, 1.0, 5.0, 5.0))).expect("send");
    assert_eq!(client.flush().expect("flush").updates_applied, 1);

    // And a restart: the old connection dies with the server, the retrying
    // reconnect picks the service back up on the same address.
    server.shutdown();
    let starter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        NetServer::bind(fleet(), addr, ServerConfig::default()).expect("re-bind")
    });
    let next_seq = client.reconnect_with_retry(policy).expect("retry reconnect");
    assert!(next_seq > 1, "resumes above every sequence sent before the restart");
    let server = starter.join().expect("server thread");
    client.send_frame(&Frame::single(0, update(next_seq, 3.0, 6.0, 6.0))).expect("send");
    assert_eq!(client.flush().expect("flush").updates_applied, 1);
    drop(client);
    server.shutdown();
}

#[test]
fn plain_server_reports_zero_journal_activity() {
    let server = NetServer::bind(fleet(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    assert!(server.recovery_report().is_none());
    assert!(server.journal().is_none());
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.send_frame(&Frame::single(3, update(1, 1.0, 5.0, 5.0))).expect("send");
    assert_eq!(client.flush().expect("flush").updates_applied, 1);
    let stats = server.stats();
    assert_eq!(stats.journal, Default::default(), "no journal: all counters zero");
    drop(client);
    server.shutdown();
}

#[test]
fn binding_durable_twice_on_one_service_is_refused() {
    let dir_a = temp_dir("twice-a");
    let dir_b = temp_dir("twice-b");
    let service = fleet();
    let server = NetServer::bind_durable(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig::default(),
        journal_config(&dir_a),
    )
    .expect("first bind");
    // A service instance carries its journal attachment: re-running recovery
    // against it would double-journal, so it is a typed refusal.
    let err = match NetServer::bind_durable(
        service,
        "127.0.0.1:0",
        ServerConfig::default(),
        journal_config(&dir_b),
    ) {
        Ok(_) => panic!("second durable bind must fail"),
        Err(err) => err,
    };
    assert!(err.to_string().contains("already has a journal"), "{err}");
    server.shutdown();
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}
