//! Workspace smoke test: one pass through the cross-crate wiring.
//!
//! Exercises the seams the workspace manifests stitch together — a
//! `LocationService` register → update → `position_at` round trip driven by a
//! real protocol over a real synthetic trace, and one parallel
//! `FleetConfig::default()` run. If any inter-crate boundary (geo → roadnet →
//! trace → core → sim → locserver) regresses, this is the first test to go
//! red.

use mbdr_core::Sighting;
use mbdr_locserver::{LocationService, ObjectId};
use mbdr_sim::fleet::{run_fleet, FleetConfig};
use mbdr_sim::protocols::{ProtocolContext, ProtocolKind};
use mbdr_trace::{Scenario, ScenarioKind};

#[test]
fn location_service_register_update_position_round_trip() {
    let data = Scenario { kind: ScenarioKind::Freeway, scale: 0.05, seed: 7 }.build();
    let ctx = ProtocolContext::for_scenario(&data);
    let requested_accuracy = 100.0;
    let mut protocol = ProtocolKind::MapBased.build(&ctx, requested_accuracy);

    let service = LocationService::new();
    let object = ObjectId(42);
    service.register(object, protocol.predictor());
    assert_eq!(service.object_count(), 1);

    // Before any update the service cannot answer.
    let first_t = data.trace.fixes.first().expect("non-empty trace").t;
    assert!(service.position_of(object, first_t).is_none());

    let mut applied = 0u64;
    let mut worst = 0.0f64;
    for (fix, truth) in data.trace.fixes.iter().zip(data.trace.ground_truth.iter()) {
        let sighting = Sighting { t: fix.t, position: fix.position, accuracy: fix.accuracy };
        if let Some(update) = protocol.on_sighting(sighting) {
            assert!(service.apply_update(object, &update), "update for a registered object");
            applied += 1;
        }
        let report = service.position_of(object, fix.t).expect("position after first update");
        worst = worst.max(report.position.distance(&truth.position));
    }
    assert!(applied >= 2, "a real trace needs several updates, got {applied}");
    assert_eq!(service.total_updates(), applied);
    // The service's answers come from the protocol's own predictor, so the
    // deviation bound (requested accuracy + sensor slack) must hold here too.
    assert!(worst <= requested_accuracy + 25.0, "worst service-side deviation {worst:.1} m");

    service.deregister(object);
    assert_eq!(service.object_count(), 0);
}

#[test]
fn default_fleet_run_completes_and_tracks_every_object() {
    let config = FleetConfig::default();
    let result = run_fleet(&config);
    assert_eq!(result.per_object.len(), config.objects);
    assert_eq!(result.traces.len(), config.objects);
    assert_eq!(result.total_updates, result.per_object.iter().map(|m| m.updates).sum::<u64>());
    assert!(result.total_updates > 0, "a moving fleet must send updates");
    assert!(result.mean_updates_per_hour > 0.0);
}
