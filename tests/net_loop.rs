//! The full serving path, end to end and bit-identical: trace → update
//! protocol → `Frame::encode` → real TCP → server decode → sharded ingest →
//! query over the same socket. Every answer that comes back over the wire
//! must equal — to the last f64 bit — what `LocationService` returns when
//! called directly on a service fed the identical frame bytes in-process.
//! The wire is then provably a transport, not a transformation.

use mbdr_core::Frame;
use mbdr_geo::{Aabb, Point};
use mbdr_locserver::{LocationService, ObjectId, ServiceConfig};
use mbdr_net::{NetClient, NetServer, ServerConfig};
use mbdr_sim::protocols::{ProtocolContext, ProtocolKind};
use mbdr_sim::runner::{run_protocol, RunConfig};
use mbdr_trace::{Scenario, ScenarioKind};
use std::sync::Arc;

#[test]
fn tcp_served_answers_are_bit_identical_to_direct_service_calls() {
    let data = Scenario { kind: ScenarioKind::City, scale: 0.08, seed: 23 }.build();
    let ctx = ProtocolContext::for_scenario(&data);

    // A small fleet: each object runs the map-based protocol at a different
    // accuracy so the update streams differ.
    let accuracies = [50.0, 100.0, 200.0, 400.0];
    let mut streams = Vec::new();
    for (i, &accuracy) in accuracies.iter().enumerate() {
        let protocol = ProtocolKind::MapBased.build(&ctx, accuracy);
        let predictor = protocol.predictor();
        let outcome = run_protocol(&data.trace, protocol, RunConfig::default());
        assert!(!outcome.updates.is_empty());
        streams.push((ObjectId(i as u64), predictor, outcome.updates));
    }

    // Both services are fed the *same encoded bytes*: one straight through
    // `apply_frame_bytes`, one across a real socket.
    let reference = LocationService::with_config(ServiceConfig::with_shards(4));
    let served = Arc::new(LocationService::with_config(ServiceConfig::with_shards(4)));
    for (id, predictor, _) in &streams {
        reference.register(*id, Arc::clone(predictor));
        served.register(*id, Arc::clone(predictor));
    }
    let server =
        NetServer::bind(Arc::clone(&served), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    let mut frames_sent = 0u64;
    for (id, _, updates) in &streams {
        for batch in updates.chunks(4) {
            let frame = Frame { source: id.0, updates: batch.to_vec() };
            let bytes = frame.encode().expect("protocol updates encode");
            assert!(reference.apply_frame_bytes(&bytes).is_ok());
            client.send_frame(&frame).expect("send over TCP");
            frames_sent += 1;
        }
    }
    let flush = client.flush().expect("flush barrier");
    assert_eq!(flush.frames, frames_sent);
    assert_eq!(flush.updates_applied, reference.total_updates());
    assert_eq!(served.total_updates(), reference.total_updates());

    let bit_identical = |wire: &mbdr_core::PositionRecord,
                         direct: &mbdr_locserver::PositionReport| {
        assert_eq!(wire.object, direct.object.0);
        assert_eq!(wire.position.x.to_bits(), direct.position.x.to_bits());
        assert_eq!(wire.position.y.to_bits(), direct.position.y.to_bits());
        assert_eq!(wire.information_age.to_bits(), direct.information_age.to_bits());
    };

    // Rect queries at several instants and extents: socket answers vs direct
    // calls on the reference service, field for field, bit for bit.
    let bounds = data.network.bounding_box().expect("city map has extent");
    let duration = data.trace.duration();
    for (i, &t) in [0.25 * duration, 0.5 * duration, duration, duration + 120.0].iter().enumerate()
    {
        let area = match i % 2 {
            0 => bounds,
            _ => Aabb::around(bounds.center(), 800.0),
        };
        let over_wire = client.objects_in_rect(&area, t).expect("rect over TCP");
        let direct = reference.objects_in_rect(&area, t);
        assert_eq!(over_wire.len(), direct.len(), "rect cardinality at t={t}");
        for (w, d) in over_wire.iter().zip(&direct) {
            bit_identical(w, d);
        }
    }

    // Nearest queries across k values and probe points.
    for (k, probe) in
        [(1u16, bounds.center()), (3, bounds.min), (4, Point::new(250.0, 600.0)), (16, bounds.max)]
    {
        let t = 0.75 * duration;
        let over_wire = client.nearest_objects(&probe, t, k).expect("nearest over TCP");
        let direct = reference.nearest_objects(&probe, t, k as usize);
        assert_eq!(over_wire.len(), direct.len(), "nearest cardinality k={k}");
        for (w, d) in over_wire.iter().zip(&direct) {
            bit_identical(w, d);
        }
    }

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.frames_received, frames_sent);
    assert_eq!(stats.frame_decode_errors, 0);
    assert_eq!(stats.connections_dropped, 0);
}
