//! End-to-end integration: scenario generation → map matching → protocols →
//! simulator → metrics, across all four movement patterns.

use mbdr_sim::protocols::ProtocolContext;
use mbdr_sim::runner::{run_protocol, RunConfig};
use mbdr_sim::{sweep_scenario, ProtocolKind};
use mbdr_trace::{Scenario, ScenarioKind, TraceStats};

#[test]
fn every_scenario_runs_the_paper_protocol_set_end_to_end() {
    for (i, kind) in ScenarioKind::ALL.into_iter().enumerate() {
        let data = Scenario { kind, scale: 0.05, seed: 100 + i as u64 }.build();
        let stats = TraceStats::of(&data.trace);
        assert!(stats.length_km > 0.1, "{kind:?} produced a trivial trace");

        let ctx = ProtocolContext::for_scenario(&data);
        for protocol in ProtocolKind::PAPER_SET {
            let outcome =
                run_protocol(&data.trace, protocol.build(&ctx, 100.0), RunConfig::default());
            assert!(outcome.metrics.updates >= 1, "{kind:?}/{protocol:?} sent no updates at all");
            assert!(
                outcome.metrics.updates as usize <= data.trace.len(),
                "{kind:?}/{protocol:?} sent more updates than sightings"
            );
            assert_eq!(outcome.metrics.deviation.samples, data.trace.len());
        }
    }
}

#[test]
fn sweep_is_deterministic_for_a_fixed_seed() {
    let data = Scenario { kind: ScenarioKind::Interurban, scale: 0.05, seed: 7 }.build();
    let accuracies = [100.0, 300.0];
    let a = sweep_scenario(&data, &ProtocolKind::PAPER_SET, &accuracies, RunConfig::default());
    let b = sweep_scenario(&data, &ProtocolKind::PAPER_SET, &accuracies, RunConfig::default());
    for (pa, pb) in a.points.iter().zip(b.points.iter()) {
        assert_eq!(pa.protocol, pb.protocol);
        assert_eq!(pa.metrics.updates, pb.metrics.updates);
    }
}

#[test]
fn update_rate_decreases_as_the_requested_accuracy_loosens() {
    let data = Scenario { kind: ScenarioKind::City, scale: 0.08, seed: 11 }.build();
    let accuracies = [20.0, 100.0, 500.0];
    let result = sweep_scenario(&data, &ProtocolKind::PAPER_SET, &accuracies, RunConfig::default());
    for protocol in ProtocolKind::PAPER_SET {
        let rates: Vec<f64> = accuracies
            .iter()
            .map(|&a| result.point(protocol, a).unwrap().metrics.updates_per_hour)
            .collect();
        assert!(
            rates[0] >= rates[2],
            "{protocol:?}: rate at 20 m ({}) should not be below rate at 500 m ({})",
            rates[0],
            rates[2]
        );
    }
}
