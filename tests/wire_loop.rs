//! End-to-end wire loop: protocol → encoded frames → degraded channel →
//! decode → sharded location service.
//!
//! The simulator charges for the bytes an update occupies on the wire; this
//! test proves those bytes actually carry the protocol. A fleet's update
//! streams are encoded into batched frames, shipped through a channel that
//! duplicates, jitters and reorders (but does not lose) them, decoded at the
//! service edge and ingested frame-at-a-time — and the resulting service
//! state must answer position queries identically (up to the codec's
//! documented f32 narrowing) to a reference service fed the same updates
//! in-memory, in order, with no wire in between.

use mbdr_core::{Frame, Update};
use mbdr_locserver::{LocationService, ObjectId, ServiceConfig};
use mbdr_sim::protocols::{ProtocolContext, ProtocolKind};
use mbdr_sim::runner::{run_protocol, RunConfig};
use mbdr_sim::{DegradedChannel, LinkConfig};
use mbdr_trace::{Scenario, ScenarioKind};

#[test]
fn wire_loop_reaches_the_service_intact_despite_dups_and_reordering() {
    let data = Scenario { kind: ScenarioKind::City, scale: 0.08, seed: 11 }.build();
    let ctx = ProtocolContext::for_scenario(&data);

    // A small fleet sharing one trace family: each object re-runs the
    // protocol at a different accuracy so the streams differ.
    let accuracies = [50.0, 100.0, 200.0, 400.0];
    let mut streams: Vec<(ObjectId, std::sync::Arc<dyn mbdr_core::Predictor>, Vec<Update>)> =
        Vec::new();
    for (i, &accuracy) in accuracies.iter().enumerate() {
        let protocol = ProtocolKind::MapBased.build(&ctx, accuracy);
        let predictor = protocol.predictor();
        let outcome = run_protocol(&data.trace, protocol, RunConfig::default());
        assert!(!outcome.updates.is_empty());
        streams.push((ObjectId(i as u64), predictor, outcome.updates));
    }

    let wired = LocationService::with_config(ServiceConfig::with_shards(4));
    let reference = LocationService::with_config(ServiceConfig::with_shards(4));
    for (id, predictor, _) in &streams {
        wired.register(*id, std::sync::Arc::clone(predictor));
        reference.register(*id, std::sync::Arc::clone(predictor));
    }

    // Reference: every update applied directly, in order.
    for (id, _, updates) in &streams {
        for update in updates {
            assert!(reference.apply_update(*id, update));
        }
    }

    // Wire path: batch every source's updates into frames of up to 4, ship
    // them through a channel that duplicates, jitters and reorders (loss
    // would legitimately change the final state, so it stays off here — the
    // lossy sweep covers it), then decode-and-apply whatever arrives.
    let link = LinkConfig {
        latency_s: 1.0,
        jitter_s: 4.0,
        loss: 0.0,
        duplicate: 0.3,
        reorder: 0.3,
        seed: 99,
    };
    let mut channel = DegradedChannel::new(link);
    for (id, _, updates) in &streams {
        for batch in updates.chunks(4) {
            let frame = Frame { source: id.0, updates: batch.to_vec() };
            let sent_at = batch.last().expect("non-empty chunk").state.timestamp;
            channel.send(sent_at, frame.encode().expect("protocol updates encode"));
        }
    }
    let end = data.trace.duration() + 1_000.0;
    let mut frames_applied = 0u64;
    for bytes in channel.deliver_until(end) {
        let applied = wired.apply_frame_bytes(&bytes).expect("delivered frames decode");
        assert!(applied <= 4);
        frames_applied += 1;
    }
    let stats = channel.stats();
    assert_eq!(stats.frames_delivered, frames_applied);
    assert!(stats.frames_duplicated > 0, "the link did duplicate");
    assert!(stats.delivered_out_of_order > 0, "the link did reorder");

    // Duplicates and reordered stragglers were rejected by the per-object
    // trackers, not silently applied (so the wired path applies at most as
    // many updates as the in-order reference): the newest state per object
    // won on both paths, and every query answer matches up to the f32
    // narrowing.
    assert!(wired.total_updates() <= reference.total_updates());
    assert_eq!(wired.indexed_count(), reference.indexed_count());
    let t = data.trace.duration();
    for (id, _, _) in &streams {
        let w = wired.position_of(*id, t).expect("wired service tracks the object");
        let r = reference.position_of(*id, t).expect("reference tracks the object");
        let distance = w.position.distance(&r.position);
        assert!(distance < 0.01, "object {:?}: wire path diverged by {distance} m", id);
        assert!((w.information_age - r.information_age).abs() < 1e-9);
    }
}
