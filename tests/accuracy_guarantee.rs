//! The accuracy guarantee: the deviation between the server-side predicted
//! position and the true position stays within the requested accuracy (plus
//! sensor error), for every dead-reckoning protocol, on every scenario —
//! including a property-based test over random straight-line motions.

use mbdr_core::{
    DistanceBasedReporting, LinearDeadReckoning, ProtocolConfig, ServerTracker, Sighting,
    UpdateProtocol,
};
use mbdr_geo::{Point, Vec2};
use mbdr_sim::protocols::ProtocolContext;
use mbdr_sim::runner::{run_protocol, RunConfig};
use mbdr_sim::ProtocolKind;
use mbdr_trace::{Scenario, ScenarioKind};
use proptest::prelude::*;

#[test]
fn bound_violations_are_negligible_on_all_scenarios_and_protocols() {
    for kind in ScenarioKind::ALL {
        let data = Scenario { kind, scale: 0.05, seed: 31 }.build();
        let ctx = ProtocolContext::for_scenario(&data);
        for protocol in [
            ProtocolKind::DistanceBased,
            ProtocolKind::Linear,
            ProtocolKind::HigherOrder,
            ProtocolKind::MapBased,
            ProtocolKind::MapProbability,
            ProtocolKind::KnownRoute,
        ] {
            let outcome =
                run_protocol(&data.trace, protocol.build(&ctx, 100.0), RunConfig::default());
            let d = &outcome.metrics.deviation;
            // The bound is enforced against the sensed position once per
            // second; GPS error and intra-second motion can push individual
            // samples slightly over. Allow 1 % of samples and 25 m of slack on
            // the maximum.
            assert!(
                d.bound_violations as f64 <= d.samples as f64 * 0.01,
                "{kind:?}/{protocol:?}: {} of {} samples violated the bound",
                d.bound_violations,
                d.samples
            );
            assert!(
                d.max <= 100.0 + 25.0,
                "{kind:?}/{protocol:?}: max deviation {:.1} m far exceeds the 100 m bound",
                d.max
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For noiseless straight-line motion at constant speed, the server-side
    /// error of linear dead reckoning must never exceed the requested
    /// accuracy, and distance-based reporting must respect it too.
    #[test]
    fn linear_dr_guarantee_on_random_straight_motion(
        speed in 1.0..40.0f64,
        heading in 0.0..std::f64::consts::TAU,
        us in 20.0..300.0f64,
        duration in 60usize..600,
    ) {
        let config = ProtocolConfig::new(us).with_sensor_uncertainty(0.0);
        let mut linear = LinearDeadReckoning::new(config, 2);
        let mut baseline = DistanceBasedReporting::new(config);
        let mut linear_server = ServerTracker::new(linear.predictor());
        let mut baseline_server = ServerTracker::new(baseline.predictor());
        let dir = Vec2::from_heading(heading);
        for t in 0..duration {
            let position = Point::ORIGIN + dir * (speed * t as f64);
            let sighting = Sighting { t: t as f64, position, accuracy: 0.0 };
            if let Some(u) = linear.on_sighting(sighting) {
                linear_server.apply(&u);
            }
            if let Some(u) = baseline.on_sighting(sighting) {
                baseline_server.apply(&u);
            }
            let linear_err = linear_server.position_at(t as f64).unwrap().distance(&position);
            let baseline_err = baseline_server.position_at(t as f64).unwrap().distance(&position);
            prop_assert!(linear_err <= us + 1e-6, "linear error {linear_err} > u_s {us}");
            prop_assert!(baseline_err <= us + 1e-6, "baseline error {baseline_err} > u_s {us}");
        }
    }

    /// Even for motion that keeps turning (which linear prediction cannot
    /// follow), the deviation check at the source keeps the server error
    /// bounded: it can exceed `u_s` only by what accumulates within a single
    /// 1 Hz sensor interval.
    #[test]
    fn linear_dr_guarantee_on_turning_motion(
        speed in 2.0..30.0f64,
        turn_rate in -0.2..0.2f64,
        us in 30.0..200.0f64,
    ) {
        let config = ProtocolConfig::new(us).with_sensor_uncertainty(0.0);
        let mut protocol = LinearDeadReckoning::new(config, 2);
        let mut server = ServerTracker::new(protocol.predictor());
        let mut heading = 0.0f64;
        let mut position = Point::ORIGIN;
        for t in 0..400usize {
            if let Some(u) = protocol.on_sighting(Sighting { t: t as f64, position, accuracy: 0.0 }) {
                server.apply(&u);
            }
            let err = server.position_at(t as f64).unwrap().distance(&position);
            prop_assert!(err <= us + speed + 1e-6, "error {err} exceeds u_s {us} plus one step");
            heading += turn_rate;
            position += Vec2::from_heading(heading) * speed;
        }
    }
}
