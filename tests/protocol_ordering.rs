//! The qualitative result of the paper: on road-bound traces the protocols
//! order map-based ≤ linear ≤ distance-based in update traffic, and the
//! advantage of dead reckoning is largest on the freeway.

use mbdr_sim::runner::RunConfig;
use mbdr_sim::{sweep_scenario, ProtocolKind, SweepResult};
use mbdr_trace::{Scenario, ScenarioKind};

fn sweep(kind: ScenarioKind, seed: u64) -> SweepResult {
    let data = Scenario { kind, scale: 0.1, seed }.build();
    let accuracies = [50.0, 100.0, 250.0];
    sweep_scenario(&data, &ProtocolKind::PAPER_SET, &accuracies, RunConfig::default())
}

#[test]
fn freeway_ordering_matches_figure_7() {
    let result = sweep(ScenarioKind::Freeway, 21);
    for &a in &result.accuracies.clone() {
        let base = result.point(ProtocolKind::DistanceBased, a).unwrap().metrics.updates_per_hour;
        let linear = result.point(ProtocolKind::Linear, a).unwrap().metrics.updates_per_hour;
        let map = result.point(ProtocolKind::MapBased, a).unwrap().metrics.updates_per_hour;
        assert!(linear < base, "linear ({linear}) must beat distance-based ({base}) at {a} m");
        assert!(map <= linear, "map-based ({map}) must not lose to linear ({linear}) at {a} m");
    }
    // The headline effect: linear DR saves a large fraction on the freeway.
    let linear_saving =
        result.max_reduction_pct(ProtocolKind::Linear, ProtocolKind::DistanceBased).unwrap();
    assert!(
        linear_saving > 50.0,
        "linear DR should save >50% on the freeway, got {linear_saving:.0}%"
    );
    let map_saving =
        result.max_reduction_pct(ProtocolKind::MapBased, ProtocolKind::DistanceBased).unwrap();
    assert!(map_saving >= linear_saving, "map-based must be at least as good overall");
}

#[test]
fn city_ordering_matches_figure_9() {
    let result = sweep(ScenarioKind::City, 22);
    for &a in &result.accuracies.clone() {
        let base = result.point(ProtocolKind::DistanceBased, a).unwrap().metrics.updates_per_hour;
        let linear = result.point(ProtocolKind::Linear, a).unwrap().metrics.updates_per_hour;
        let map = result.point(ProtocolKind::MapBased, a).unwrap().metrics.updates_per_hour;
        // In dense city traffic dead reckoning hardly helps (Fig. 9: the
        // curves nearly coincide). At loose accuracies it can even lose a
        // little: a stays-put prediction's error grows at most at the driving
        // speed, while a straight-line extrapolation held through a turn
        // diverges at up to twice that, so with only a handful of updates per
        // run the ordering flips within discretization noise. Demand strict
        // dominance at tight accuracies and the same ballpark at loose ones.
        if a < 250.0 {
            assert!(linear <= base, "at {a} m: linear {linear} vs base {base}");
        } else {
            assert!(linear <= base * 1.3, "at {a} m: linear {linear} vs base {base}");
        }
        assert!(map <= linear * 1.3, "at {a} m: map {map} vs linear {linear}");
    }
}

#[test]
fn dead_reckoning_gains_are_larger_on_the_freeway_than_in_the_city() {
    let freeway = sweep(ScenarioKind::Freeway, 23);
    let city = sweep(ScenarioKind::City, 23);
    let freeway_saving =
        freeway.max_reduction_pct(ProtocolKind::Linear, ProtocolKind::DistanceBased).unwrap();
    let city_saving =
        city.max_reduction_pct(ProtocolKind::Linear, ProtocolKind::DistanceBased).unwrap();
    assert!(
        freeway_saving >= city_saving - 5.0,
        "freeway saving ({freeway_saving:.0}%) should not be clearly below city saving ({city_saving:.0}%)"
    );
}
