//! Integration of the update protocols with the location service: a small
//! fleet streams its protocol updates into the service, whose answers must
//! stay within the accuracy bound of the protocol feeding it.

use mbdr_core::Sighting;
use mbdr_geo::Point;
use mbdr_locserver::{LocationService, ObjectId, ZoneWatcher};
use mbdr_sim::protocols::{ProtocolContext, ProtocolKind};
use mbdr_trace::{Scenario, ScenarioKind};
use std::sync::Arc;

#[test]
fn streamed_updates_keep_the_service_answer_within_the_bound() {
    let data = Scenario { kind: ScenarioKind::City, scale: 0.05, seed: 61 }.build();
    let ctx = ProtocolContext::for_scenario(&data);
    let requested_accuracy = 100.0;
    let mut protocol = ProtocolKind::MapBased.build(&ctx, requested_accuracy);

    let service = LocationService::new();
    let object = ObjectId(1);
    service.register(object, protocol.predictor());

    let mut checked = 0usize;
    let mut worst = 0.0f64;
    for (fix, truth) in data.trace.fixes.iter().zip(data.trace.ground_truth.iter()) {
        if let Some(update) = protocol.on_sighting(Sighting {
            t: fix.t,
            position: fix.position,
            accuracy: fix.accuracy,
        }) {
            assert!(service.apply_update(object, &update));
        }
        if let Some(report) = service.position_of(object, fix.t) {
            let error = report.position.distance(&truth.position);
            worst = worst.max(error);
            checked += 1;
        }
    }
    assert!(checked > data.trace.len() / 2, "the service answered for most of the trace");
    assert!(
        worst <= requested_accuracy + 25.0,
        "worst service-side error {worst:.1} m grossly exceeds the {requested_accuracy} m bound"
    );
    assert!(service.total_updates() > 0);
}

#[test]
fn multi_object_service_supports_dispatch_queries_while_tracking() {
    // Three objects on the same map, fed fix by fix; in the middle of the run
    // the dispatcher issues nearest/range queries that must reflect every
    // object registered so far.
    let data = Scenario { kind: ScenarioKind::City, scale: 0.04, seed: 62 }.build();
    let ctx = ProtocolContext::for_scenario(&data);
    let service = Arc::new(LocationService::new());

    let mut protocols: Vec<_> = (0..3).map(|_| ProtocolKind::Linear.build(&ctx, 150.0)).collect();
    for (i, p) in protocols.iter().enumerate() {
        service.register(ObjectId(i as u64), p.predictor());
    }

    let mut watcher = ZoneWatcher::new();
    let bb = data.network.bounding_box().unwrap();
    watcher.add_zone("whole city", bb);

    for (step, fix) in data.trace.fixes.iter().enumerate() {
        for (i, protocol) in protocols.iter_mut().enumerate() {
            // Give each object a distinct offset so they are distinguishable.
            let offset = 40.0 * i as f64;
            let position = Point::new(fix.position.x + offset, fix.position.y);
            if let Some(update) =
                protocol.on_sighting(Sighting { t: fix.t, position, accuracy: fix.accuracy })
            {
                service.apply_update(ObjectId(i as u64), &update);
            }
        }
        if step == data.trace.len() / 2 {
            let nearest = service.nearest_objects(&fix.position, fix.t, 3);
            assert_eq!(nearest.len(), 3, "all three objects are known to the service");
            assert!(nearest.windows(2).all(|w| {
                fix.position.distance(&w[0].position)
                    <= fix.position.distance(&w[1].position) + 1e-9
            }));
            let everyone = service.objects_in_rect(&bb.inflated(500.0), fix.t);
            assert_eq!(everyone.len(), 3);
            let events = watcher.evaluate(&service, fix.t);
            assert!(events.len() <= 3);
        }
    }
    assert_eq!(service.object_count(), 3);
}
