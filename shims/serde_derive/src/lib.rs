//! Offline shim for `serde_derive`.
//!
//! The derives expand to nothing: the sibling `serde` shim provides blanket
//! implementations of `Serialize`/`Deserialize`, so annotated types satisfy
//! any serde trait bound without generated code.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
