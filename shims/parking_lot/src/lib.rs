//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's non-poisoning API: `read()` /
//! `write()` / `lock()` return guards directly. A poisoned std lock (a writer
//! panicked) is recovered rather than propagated, matching parking_lot's
//! behaviour of never poisoning.

use std::sync;

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for shared read access.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for exclusive write access.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for an acquired [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
