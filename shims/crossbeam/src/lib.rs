//! Offline shim for `crossbeam`.
//!
//! Implements `crossbeam::thread::scope` on top of `std::thread::scope`
//! (stable since Rust 1.63). Spawn closures receive the scope as an argument,
//! matching crossbeam's signature (`scope.spawn(|scope| ...)`), so call sites
//! written against crossbeam compile unchanged.
//!
//! Divergence from crossbeam: a panicking child thread propagates the panic
//! out of `scope` (std semantics) instead of surfacing it as `Err`. Every
//! call site in this workspace immediately `.expect()`s the result, so the
//! observable behaviour — abort with the panic message — is the same.

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::thread as std_thread;

    /// Handle for spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std_thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Creates a scope in which all spawned threads are joined before
    /// returning. Always `Ok` (see module docs on panic semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}
