//! Offline shim for `serde`.
//!
//! The workspace only uses serde as derive annotations on data types (no
//! serializer is ever invoked — JSON output in `mbdr-bench` is hand-written).
//! This shim keeps those annotations compiling without registry access:
//! marker traits with blanket impls, plus no-op derives from the
//! `serde_derive` shim.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
