//! Offline shim for `rand` 0.8.
//!
//! Provides the exact API surface this workspace consumes: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_range` (over exclusive and inclusive ranges of floats and integers)
//! and `gen_bool`. The generator is SplitMix64 — deterministic, well mixed,
//! and more than adequate for the simulator's synthetic maps and traces.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A type that can be sampled uniformly from an RNG's raw bits.
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A scalar type `gen_range` can sample over.
pub trait UniformSample: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl UniformSample for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl UniformSample for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    (hi as i128 - lo as i128 + 1) as u128
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    (hi as i128 - lo as i128) as u128
                };
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (e.g. `rng.gen::<f64>()` in `[0, 1)`).
    #[inline]
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range, e.g. `rng.gen_range(0.0..1.0)`.
    #[inline]
    fn gen_range<T: UniformSample, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix once so consecutive small seeds do not produce
            // correlated first draws.
            let mut rng = StdRng { state };
            let _ = rng.next_u64();
            rng
        }
    }
}
