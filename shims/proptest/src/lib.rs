//! Offline shim for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(...)]` header and `param in
//! strategy` bindings), range strategies, tuple strategies, `prop_map`,
//! `proptest::collection::vec`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Semantics differ from real proptest in one way that matters: failing cases
//! are **not shrunk** — a failure reports the sampled values via the assert
//! message only. Case generation is deterministic per test (seeded from the
//! test's name), so failures reproduce across runs.

use std::ops::Range;

pub use rand::rngs::StdRng;
use rand::{SampleRange, SeedableRng, UniformSample};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.sample_value(rng))
    }
}

impl<T: UniformSample> Strategy for Range<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Collection strategies.
pub mod collection {
    use super::{SampleRange, Strategy};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Produces `Vec`s of `elem` values with a length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut super::StdRng) -> Self::Value {
            let n = self.len.clone().sample_from(rng);
            (0..n).map(|_| self.elem.sample_value(rng)).collect()
        }
    }
}

/// Seeds the per-test RNG deterministically from the test name (FNV-1a).
pub fn seed_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Draws one value from a strategy (used by the `proptest!` expansion).
pub fn sample_one<S: Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    strategy.sample_value(rng)
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a property holds (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts two values are equal (plain `assert_eq!`; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Declares property tests: each `param in strategy` binding is sampled per
/// case and the body re-run `config.cases` times.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($param:ident in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::seed_rng(stringify!($name));
                for _case in 0..config.cases {
                    $( let $param = $crate::sample_one(&($strategy), &mut rng); )*
                    $body
                }
            }
        )*
    };
}
