//! Offline shim for `criterion`.
//!
//! A minimal but functional bench harness exposing the Criterion API surface
//! the workspace's benches use: `Criterion::benchmark_group`, group
//! `sample_size` / `bench_function` / `finish`, `Bencher::iter`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark runs
//! `sample_size` timed samples after a short warm-up and prints
//! min / mean / max per-iteration wall time.

use std::time::Instant;

/// Re-export of the standard black box to defeat constant folding.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Passed to bench closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    /// Total elapsed nanoseconds across the `iters` measured iterations.
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Top-level bench driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLE_SIZE: usize = 10;

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), sample_size: DEFAULT_SAMPLE_SIZE }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Ends the group (no-op; prints a separator for readability).
    pub fn finish(self) {
        println!();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Warm-up sample, not recorded.
    let mut bencher = Bencher { iters: 1, elapsed_ns: 0 };
    f(&mut bencher);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher { iters: 1, elapsed_ns: 0 };
        f(&mut bencher);
        per_iter.push(bencher.elapsed_ns as f64 / bencher.iters as f64);
    }
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0_f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "bench {name:<40} [{:>12} {:>12} {:>12}] ({} samples)",
        format_ns(min),
        format_ns(mean),
        format_ns(max),
        samples
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Groups bench target functions into one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
